// Qlog-style structured event trace.
//
// The paper's testbed methodology derives all timing results from Qlog
// (§3): packets sent/received plus recovery:metrics updates (smoothed RTT,
// RTT variation). Implementations differ in how many metric updates they
// expose and whether they log the RTT variance at all (Appendix E, Fig 11);
// both are modelled here via an exposure probability and a logs_rttvar flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "quic/types.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace quicer::qlog {

/// recovery:metrics_updated event payload.
struct MetricsUpdate {
  sim::Time time = 0;
  sim::Duration smoothed_rtt = 0;
  sim::Duration rtt_var = 0;       // 0 when the implementation does not log it
  sim::Duration latest_rtt = 0;
  sim::Duration min_rtt = 0;
  sim::Duration pto = 0;           // PTO period implied by the metrics
  bool rtt_var_logged = true;
};

/// transport:packet_sent / packet_received event payload.
struct PacketEvent {
  sim::Time time = 0;
  bool sent = false;  // false = received
  quic::PacketNumberSpace space = quic::PacketNumberSpace::kInitial;
  std::uint64_t packet_number = 0;
  std::size_t size = 0;
  bool ack_eliciting = false;
};

/// Free-form noteworthy events (PTO expiry, amplification block, ...).
struct NoteEvent {
  sim::Time time = 0;
  std::string category;
  std::string detail;
};

/// Structured events beyond packets/metrics, matching qlog draft event
/// classes. One tagged struct instead of per-class vectors: the classes are
/// rare relative to packets, and a single time-ordered stream is what
/// serialisation wants anyway.
struct StructEvent {
  enum class Kind : std::uint8_t {
    kLossTimerUpdated,       // recovery:loss_timer_updated
    kPacketLost,             // recovery:packet_lost
    kDatagramDropped,        // transport:datagram_dropped
    kConnectionStateUpdated, // connectivity:connection_state_updated
  };
  Kind kind = Kind::kLossTimerUpdated;
  /// Sub-kind discriminators, meaning depends on Kind:
  ///  * kLossTimerUpdated: event_type — 0 = set, 1 = cancelled, 2 = expired
  ///  * kPacketLost: trigger — 0 = reordering_threshold, 1 = time_threshold
  ///  * kDatagramDropped: drop cause — 0 = pattern, 1 = stochastic, 2 = queue
  ///  * kConnectionStateUpdated: 0 = handshake_complete,
  ///    1 = handshake_confirmed, 2 = closed
  std::uint8_t detail = 0;
  /// kLossTimerUpdated only: 0 = ack (time-threshold) timer, 1 = pto.
  std::uint8_t timer_type = 0;
  sim::Time time = 0;
  quic::PacketNumberSpace space = quic::PacketNumberSpace::kInitial;
  std::uint64_t packet_number = 0;  // kPacketLost: the lost packet
  std::uint64_t size = 0;           // kDatagramDropped: raw payload length
  sim::Time deadline = 0;           // kLossTimerUpdated(set): absolute expiry
};

/// Controls how faithfully the emulated implementation exposes its
/// recovery metrics (Appendix E).
struct TraceConfig {
  /// Probability that an individual metrics update is written to the log.
  double metrics_exposure = 1.0;
  /// False for implementations that omit rttvar (neqo, mvfst, picoquic).
  bool logs_rttvar = true;
  /// Capture packet events (disable for bulk-transfer speed).
  bool capture_packets = true;
  /// Capture structured recovery/transport/connectivity events (StructEvent).
  /// Off by default: metric extraction never reads them, and keeping the
  /// default trace byte-identical to pre-telemetry builds is part of the
  /// export contract. Enabled for qlog export (--qlog-dir).
  bool capture_events = false;
};

/// Live prefix of a trace's note log. Note slots (and their string buffers)
/// are recycled across Trace::Reset() calls, so the backing vector may hold
/// more entries than are currently valid; this view exposes only the live
/// ones.
class NotesView {
 public:
  NotesView(const NoteEvent* data, std::size_t size) : data_(data), size_(size) {}
  const NoteEvent* begin() const { return data_; }
  const NoteEvent* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const NoteEvent& operator[](std::size_t index) const { return data_[index]; }

 private:
  const NoteEvent* data_;
  std::size_t size_;
};

/// Per-connection event log.
class Trace {
 public:
  Trace() : Trace(TraceConfig{}, sim::Rng(1)) {}
  Trace(TraceConfig config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Rewinds to a freshly-constructed trace under a new config and RNG
  /// (context reuse between repetitions). Event buffers keep their capacity;
  /// note slots keep their string buffers and are overwritten in place.
  void Reset(TraceConfig config, sim::Rng rng);

  void RecordPacket(const PacketEvent& event);

  /// Records a metrics update, subject to the exposure probability. Two
  /// consecutive identical updates are deduplicated, mirroring the paper's
  /// post-processing.
  void RecordMetrics(const MetricsUpdate& update);

  void RecordNote(sim::Time time, std::string_view category, std::string_view detail);

  /// Records a structured event when capture_events is on (single branch
  /// otherwise — callers emit unconditionally).
  void RecordEvent(const StructEvent& event) {
    if (!config_.capture_events) return;
    if (events_.capacity() == 0) events_.reserve(32);
    events_.push_back(event);
  }

  bool capturing_events() const { return config_.capture_events; }

  /// Count of received packets that newly acknowledged data ("packets with
  /// new ACKs" in Fig 11); incremented by the connection.
  void CountNewAckPacket() { ++packets_with_new_acks_; }

  const std::vector<MetricsUpdate>& metrics() const { return metrics_; }
  /// Moves the metrics log out (for result extraction at end of run; the
  /// trace is discarded or reset afterwards).
  std::vector<MetricsUpdate> TakeMetrics() { return std::move(metrics_); }
  const std::vector<PacketEvent>& packets() const { return packets_; }
  const std::vector<StructEvent>& events() const { return events_; }
  NotesView notes() const { return NotesView(notes_.data(), notes_used_); }
  std::uint64_t packets_with_new_acks() const { return packets_with_new_acks_; }

  /// First logged metrics update, if any (basis of Fig 16).
  std::optional<MetricsUpdate> FirstMetrics() const;

  std::uint64_t suppressed_metrics_updates() const { return suppressed_; }

 private:
  TraceConfig config_;
  sim::Rng rng_;
  std::vector<MetricsUpdate> metrics_;
  std::vector<PacketEvent> packets_;
  std::vector<StructEvent> events_;
  /// Note slots; only the first notes_used_ are live (see NotesView).
  std::vector<NoteEvent> notes_;
  std::size_t notes_used_ = 0;
  std::uint64_t packets_with_new_acks_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace quicer::qlog
