#include "qlog/qlog_json.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace quicer::qlog {
namespace {

const char* SpaceName(quic::PacketNumberSpace space) {
  switch (space) {
    case quic::PacketNumberSpace::kInitial: return "initial";
    case quic::PacketNumberSpace::kHandshake: return "handshake";
    case quic::PacketNumberSpace::kAppData: return "1RTT";
  }
  return "unknown";
}

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct Record {
  sim::Time time;
  int order;
  std::string json;
};

}  // namespace

std::string ToJsonSeq(const Trace& trace, const JsonOptions& options) {
  std::vector<Record> records;
  char buf[512];
  int order = 0;

  if (options.include_packets) {
    for (const PacketEvent& event : trace.packets()) {
      std::snprintf(buf, sizeof(buf),
                    R"({"time":%.3f,"name":"transport:packet_%s","data":{)"
                    R"("header":{"packet_type":"%s","packet_number":%llu},)"
                    R"("raw":{"length":%zu},"is_ack_eliciting":%s}})",
                    sim::ToMillis(event.time), event.sent ? "sent" : "received",
                    SpaceName(event.space),
                    static_cast<unsigned long long>(event.packet_number), event.size,
                    event.ack_eliciting ? "true" : "false");
      records.push_back({event.time, order++, buf});
    }
  }

  if (options.include_metrics) {
    for (const MetricsUpdate& update : trace.metrics()) {
      if (update.rtt_var_logged) {
        std::snprintf(buf, sizeof(buf),
                      R"({"time":%.3f,"name":"recovery:metrics_updated","data":{)"
                      R"("smoothed_rtt":%.3f,"rtt_variance":%.3f,"latest_rtt":%.3f,)"
                      R"("min_rtt":%.3f,"pto_count":0}})",
                      sim::ToMillis(update.time), sim::ToMillis(update.smoothed_rtt),
                      sim::ToMillis(update.rtt_var), sim::ToMillis(update.latest_rtt),
                      sim::ToMillis(update.min_rtt));
      } else {
        // Implementations that omit the variance (neqo, mvfst, picoquic).
        std::snprintf(buf, sizeof(buf),
                      R"({"time":%.3f,"name":"recovery:metrics_updated","data":{)"
                      R"("smoothed_rtt":%.3f,"latest_rtt":%.3f,"min_rtt":%.3f,)"
                      R"("pto_count":0}})",
                      sim::ToMillis(update.time), sim::ToMillis(update.smoothed_rtt),
                      sim::ToMillis(update.latest_rtt), sim::ToMillis(update.min_rtt));
      }
      records.push_back({update.time, order++, buf});
    }
  }

  if (options.include_events) {
    for (const StructEvent& event : trace.events()) {
      switch (event.kind) {
        case StructEvent::Kind::kLossTimerUpdated: {
          static const char* kEventType[] = {"set", "cancelled", "expired"};
          const char* timer = event.timer_type == 0 ? "ack" : "pto";
          if (event.detail == 0) {
            std::snprintf(buf, sizeof(buf),
                          R"({"time":%.3f,"name":"recovery:loss_timer_updated","data":{)"
                          R"("event_type":"set","timer_type":"%s",)"
                          R"("packet_number_space":"%s","delta":%.3f}})",
                          sim::ToMillis(event.time), timer, SpaceName(event.space),
                          sim::ToMillis(event.deadline - event.time));
          } else {
            std::snprintf(buf, sizeof(buf),
                          R"({"time":%.3f,"name":"recovery:loss_timer_updated","data":{)"
                          R"("event_type":"%s","timer_type":"%s"}})",
                          sim::ToMillis(event.time), kEventType[event.detail], timer);
          }
          break;
        }
        case StructEvent::Kind::kPacketLost:
          std::snprintf(buf, sizeof(buf),
                        R"({"time":%.3f,"name":"recovery:packet_lost","data":{)"
                        R"("header":{"packet_type":"%s","packet_number":%llu},)"
                        R"("trigger":"%s"}})",
                        sim::ToMillis(event.time), SpaceName(event.space),
                        static_cast<unsigned long long>(event.packet_number),
                        event.detail == 1 ? "time_threshold" : "reordering_threshold");
          break;
        case StructEvent::Kind::kDatagramDropped: {
          static const char* kCause[] = {"pattern", "stochastic", "queue_overflow"};
          std::snprintf(buf, sizeof(buf),
                        R"({"time":%.3f,"name":"transport:datagram_dropped","data":{)"
                        R"("raw":{"length":%llu},"trigger":"%s"}})",
                        sim::ToMillis(event.time),
                        static_cast<unsigned long long>(event.size),
                        kCause[event.detail]);
          break;
        }
        case StructEvent::Kind::kConnectionStateUpdated: {
          static const char* kState[] = {"handshake_complete", "handshake_confirmed",
                                         "closed"};
          std::snprintf(buf, sizeof(buf),
                        R"({"time":%.3f,"name":"connectivity:connection_state_updated",)"
                        R"("data":{"new":"%s"}})",
                        sim::ToMillis(event.time), kState[event.detail]);
          break;
        }
      }
      records.push_back({event.time, order++, buf});
    }
  }

  if (options.include_notes) {
    for (const NoteEvent& note : trace.notes()) {
      std::snprintf(buf, sizeof(buf),
                    R"({"time":%.3f,"name":"internal:note","data":{"category":"%s",)"
                    R"("message":"%s"}})",
                    sim::ToMillis(note.time), Escape(note.category).c_str(),
                    Escape(note.detail).c_str());
      records.push_back({note.time, order++, buf});
    }
  }

  std::stable_sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });

  std::string out;
  std::snprintf(buf, sizeof(buf),
                R"({"qlog_version":"0.3","title":"reacked-quicer trace",)"
                R"("trace":{"vantage_point":{"name":"%s"},"event_count":%zu}})",
                Escape(options.vantage).c_str(), records.size());
  out += buf;
  out.push_back('\n');
  for (const Record& record : records) {
    out += record.json;
    out.push_back('\n');
  }
  return out;
}

}  // namespace quicer::qlog
