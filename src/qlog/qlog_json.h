// Qlog JSON-SEQ serialisation (draft-ietf-quic-qlog-main-schema).
//
// The paper's toolchain consumes Qlog files; this exporter produces the
// same event classes our Trace records — transport:packet_sent /
// packet_received and recovery:metrics_updated — in the NDJSON ("JSON text
// sequence") framing used by qlog 0.3, so traces can be fed to existing
// qlog tooling (qvis etc.) or diffed across runs.
#pragma once

#include <string>

#include "qlog/qlog.h"

namespace quicer::qlog {

/// Options for serialisation.
struct JsonOptions {
  /// Emit packet events (can dominate file size for bulk transfers).
  bool include_packets = true;
  /// Emit recovery metric updates.
  bool include_metrics = true;
  /// Emit free-form notes as "internal:note" events.
  bool include_notes = true;
  /// Emit structured recovery/transport/connectivity events (StructEvent):
  /// recovery:loss_timer_updated, recovery:packet_lost,
  /// transport:datagram_dropped, connectivity:connection_state_updated.
  bool include_events = true;
  /// Vantage point name recorded in the header.
  std::string vantage = "client";
};

/// Serialises the trace as newline-delimited JSON: one header record
/// followed by one record per event, ordered by time.
std::string ToJsonSeq(const Trace& trace, const JsonOptions& options = {});

}  // namespace quicer::qlog
