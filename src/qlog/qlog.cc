#include "qlog/qlog.h"

#include <utility>

namespace quicer::qlog {

void Trace::RecordPacket(const PacketEvent& event) {
  if (!config_.capture_packets) return;
  // One up-front reservation sized for a typical handshake+transfer replaces
  // the half-dozen geometric regrowths the hot path used to pay.
  if (packets_.capacity() == 0) packets_.reserve(64);
  packets_.push_back(event);
}

void Trace::RecordMetrics(const MetricsUpdate& update) {
  MetricsUpdate stored = update;
  stored.rtt_var_logged = config_.logs_rttvar;
  if (!config_.logs_rttvar) stored.rtt_var = 0;

  if (config_.metrics_exposure < 1.0 && !rng_.Bernoulli(config_.metrics_exposure)) {
    ++suppressed_;
    return;
  }
  if (metrics_.capacity() == 0) metrics_.reserve(16);
  // The paper removes consecutive duplicates when counting exposed updates.
  if (!metrics_.empty()) {
    const MetricsUpdate& last = metrics_.back();
    if (last.smoothed_rtt == stored.smoothed_rtt && last.rtt_var == stored.rtt_var &&
        last.latest_rtt == stored.latest_rtt) {
      return;
    }
  }
  metrics_.push_back(stored);
}

void Trace::RecordNote(sim::Time time, std::string_view category, std::string_view detail) {
  // Reuse a retired slot when one exists: string::assign into retained
  // capacity keeps repeated runs allocation-free in steady state.
  if (notes_used_ < notes_.size()) {
    NoteEvent& note = notes_[notes_used_];
    note.time = time;
    note.category.assign(category);
    note.detail.assign(detail);
  } else {
    notes_.push_back(NoteEvent{time, std::string(category), std::string(detail)});
  }
  ++notes_used_;
}

void Trace::Reset(TraceConfig config, sim::Rng rng) {
  config_ = config;
  rng_ = rng;
  metrics_.clear();
  packets_.clear();
  events_.clear();
  notes_used_ = 0;  // slots stay allocated; RecordNote overwrites them
  packets_with_new_acks_ = 0;
  suppressed_ = 0;
}

std::optional<MetricsUpdate> Trace::FirstMetrics() const {
  if (metrics_.empty()) return std::nullopt;
  return metrics_.front();
}

}  // namespace quicer::qlog
