#include "http/http.h"

#include <gtest/gtest.h>

namespace quicer::http {
namespace {

TEST(Http, StreamIdConventions) {
  EXPECT_EQ(kRequestStreamId, 0u);
  EXPECT_EQ(kClientControlStreamId, 2u);
  EXPECT_EQ(kServerControlStreamId, 3u);
}

TEST(Http, PaperFileSizes) {
  EXPECT_EQ(kSmallFileBytes, 10u * 1024u);
  EXPECT_EQ(kLargeFileBytes, 10u * 1024u * 1024u);
}

TEST(Http, RequestFitsInOnePacket) {
  EXPECT_LT(RequestBytes(Version::kHttp1), 200u);
  EXPECT_LT(RequestBytes(Version::kHttp3), 200u);
}

TEST(Http, H3RequestSmallerThanH1) {
  // QPACK compression beats the textual request line.
  EXPECT_LT(RequestBytes(Version::kHttp3), RequestBytes(Version::kHttp1));
}

TEST(Http, ResponseHeadNonZero) {
  EXPECT_GT(ResponseHeadBytes(Version::kHttp1), 0u);
  EXPECT_GT(ResponseHeadBytes(Version::kHttp3), 0u);
}

TEST(Http, ToStringNames) {
  EXPECT_EQ(ToString(Version::kHttp1), "HTTP/1.1");
  EXPECT_EQ(ToString(Version::kHttp3), "HTTP/3");
}

}  // namespace
}  // namespace quicer::http
