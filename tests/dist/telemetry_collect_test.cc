// Telemetry across the distributed pipeline: sweeps record per-(bench,
// sweep) counters, partial-result files carry the telemetry block, the
// merge folds it (sums vs high-water maxima), and collect writes one
// fleet-wide report — while the data exports stay byte-identical to a run
// without any of it.
//
// Lives in its own binary: EnableProcess is sticky, so these tests must
// not share a process with tests asserting the disabled default.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"
#include "dist/collect.h"
#include "dist/work_queue.h"
#include "dist/worker.h"
#include "obs/telemetry.h"

namespace quicer::dist {
namespace {

namespace fs = std::filesystem;

std::string Scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("dist_telemetry_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A synthetic sweep whose runner bumps a counter once per repetition, so
/// the telemetry fold is checkable exactly: the merged count must equal
/// the executed run count, however the grid was split across units.
core::SweepSpec CountingSpec() {
  core::SweepSpec spec;
  spec.name = "counting";
  spec.axes.extras = {{"k", {{"a", 0}, {"b", 1}, {"c", 2}, {"d", 3}}}};
  spec.repetitions = 6;
  spec.metrics = {{"v", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& ctx) {
    quicer::obs::Count(quicer::obs::kEventsRun);
    quicer::obs::CountMax(quicer::obs::kPoolFrameHighWater,
                          static_cast<std::uint64_t>(ctx.repetition + 1));
    return std::vector<double>{static_cast<double>(ctx.point.Extra("k")->value) * 10.0 +
                               ctx.repetition};
  };
  return spec;
}

TEST(SweepTelemetry, RunSweepSnapshotsCountersPerSweep) {
  obs::EnableProcess();
  obs::SetCurrentBench("synthetic");
  const core::SweepResult result = core::RunSweep(CountingSpec());
  obs::SetCurrentBench("");

  ASSERT_TRUE(result.telemetry.enabled);
  EXPECT_GT(result.telemetry.wall_seconds, 0.0);
  std::uint64_t runs = 0;
  std::uint64_t highwater = 0;
  for (const auto& [name, value] : result.telemetry.counters) {
    if (name == "sim.events_run") runs = value;
    if (name == "quic.pool.frame_highwater") highwater = value;
  }
  EXPECT_EQ(runs, 24u);       // 4 points x 6 repetitions
  EXPECT_EQ(highwater, 6u);   // max repetition index + 1, not a sum

  // The engine appended a (bench, sweep) record for the report.
  bool recorded = false;
  for (const obs::SweepRecord& record : obs::TakeSweepRecords()) {
    if (record.sweep != "counting") continue;
    recorded = true;
    EXPECT_EQ(record.bench, "synthetic");
    EXPECT_EQ(record.executed_runs, 24u);
    EXPECT_EQ(obs::RecordCounter(record, "sim.events_run"), 24u);
  }
  EXPECT_TRUE(recorded);
}

TEST(SweepTelemetry, PartialDocumentsCarryAndMergeTheTelemetryBlock) {
  obs::EnableProcess();
  // Two repetition-window halves of the same grid.
  std::vector<core::SweepResult> partials;
  for (int half = 0; half < 2; ++half) {
    core::SweepSpec spec = CountingSpec();
    spec.shard.rep_begin = half == 0 ? 0 : 3;
    spec.shard.rep_end = half == 0 ? 3 : 0;
    partials.push_back(core::RunSweep(spec));
    ASSERT_TRUE(partials.back().telemetry.enabled);
  }

  // The telemetry block survives the partial-file round trip.
  for (core::SweepResult& partial : partials) {
    std::string error;
    std::optional<core::SweepResult> parsed =
        core::ParseSweepPartialJson(core::SweepPartialJson(partial), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->telemetry.enabled);
    EXPECT_EQ(parsed->telemetry.counters, partial.telemetry.counters);
    partial = std::move(*parsed);
  }

  std::string error;
  const std::optional<core::SweepResult> merged =
      core::MergeSweepResults(partials, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_TRUE(merged->telemetry.enabled);
  std::uint64_t runs = 0;
  std::uint64_t highwater = 0;
  for (const auto& [name, value] : merged->telemetry.counters) {
    if (name == "sim.events_run") runs = value;
    if (name == "quic.pool.frame_highwater") highwater = value;
  }
  EXPECT_EQ(runs, 24u);      // 12 + 12: sums add across partials
  EXPECT_EQ(highwater, 6u);  // max(3, 6): high-water marks take the max
  EXPECT_GT(merged->telemetry.wall_seconds, 0.0);
}

TEST(SweepTelemetry, CollectFoldsWorkerTelemetryIntoOneReport) {
  obs::EnableProcess();
  const std::string root = Scratch("queue");
  const std::vector<SweepInventory> sweeps = {{"synthetic", "counting", 4, 6}};
  const std::vector<WorkUnit> units = PlanUnits(sweeps, 8);
  ASSERT_GT(units.size(), 1u);  // the grid really is split across units
  WorkQueue::Manifest manifest;
  manifest.unit_count = units.size();
  manifest.sweeps = sweeps;
  std::string error;
  ASSERT_TRUE(WorkQueue::Init(root, manifest, units, &error)) << error;
  std::optional<WorkQueue> queue = WorkQueue::Open(root, &error);
  ASSERT_TRUE(queue.has_value()) << error;

  UnitRunner runner = [](const WorkUnit& unit, const std::string& stage_dir) {
    core::SweepSpec spec = CountingSpec();
    spec.shard.points = unit.points;
    spec.shard.rep_begin = unit.rep_begin;
    spec.shard.rep_end = unit.rep_end;
    spec.only_sweep = unit.sweep;
    return core::WriteSweepData(core::RunSweep(spec), stage_dir) ? 0 : 1;
  };
  WorkerOptions options;
  options.worker_id = "w1";
  options.wait_for_stragglers = false;
  const WorkerStats stats = RunWorker(*queue, options, runner);
  ASSERT_EQ(stats.units_failed, 0u);

  const std::string out = Scratch("out");
  const std::string report_path = (fs::path(out) / "telemetry.json").string();
  CollectReport report;
  ASSERT_TRUE(Collect(*queue, out, &report, nullptr, report_path)) << report.error;

  const std::optional<core::JsonValue> doc =
      core::JsonValue::Parse(SlurpFile(report_path), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->GetString("format"), "quicer-telemetry-v1");
  const core::JsonValue* entries = doc->Get("sweeps");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->Items().size(), 1u);
  const core::JsonValue& entry = entries->Items()[0];
  EXPECT_EQ(entry.GetString("bench"), "synthetic");
  EXPECT_EQ(entry.GetString("sweep"), "counting");
  const core::JsonValue* counters = entry.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(counters->GetNumber("sim.events_run")), 24u);

  // Telemetry never leaks into the data exports: the collected exports are
  // byte-identical to a plain single-process run's.
  const std::string ref = Scratch("ref");
  ASSERT_TRUE(core::WriteSweepData(core::RunSweep(CountingSpec()), ref));
  for (const char* file : {"counting_sweep.csv", "counting_sweep.json"}) {
    EXPECT_EQ(SlurpFile(out + "/" + file), SlurpFile(ref + "/" + file)) << file;
  }
}

}  // namespace
}  // namespace quicer::dist
