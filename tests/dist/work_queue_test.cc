// The distributed queue contract: planning tiles every grid exactly once,
// claims are exclusive, crashed workers' units are reclaimed, and the
// collect phase reproduces a single-process run's exports byte for byte —
// including points whose repetitions were split across units (and workers).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"
#include "dist/collect.h"
#include "dist/work_queue.h"
#include "dist/worker.h"

namespace quicer::dist {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch directory per test.
std::string Scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("dist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Two synthetic sweeps standing in for one bench body with two RunSweep
/// calls: "alpha" is big enough that its points' repetitions get split into
/// windows; "beta" is a small sibling. Values are pure functions of
/// (point, repetition), with aborted and no-sample repetitions sprinkled
/// in so the merge also reconciles counters.
core::SweepSpec AlphaSpec() {
  core::SweepSpec spec;
  spec.name = "alpha";
  spec.axes.extras = {{"k", {{"a", 0}, {"b", 1}, {"c", 2}, {"d", 3}, {"e", 4}}}};
  spec.repetitions = 12;
  spec.metrics = {{"m_sum", core::MetricMode::kSummary, /*exclude_negative=*/true, nullptr},
                  {"m_trace", core::MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& ctx) {
    const double k = static_cast<double>(ctx.point.Extra("k")->value);
    const double sum = ctx.repetition == 2 ? -1.0 : k * 100.0 + ctx.repetition;
    const double trace =
        ctx.repetition % 7 == 5 ? core::NoSample() : k + ctx.repetition * 0.5;
    return std::vector<double>{sum, trace};
  };
  return spec;
}

core::SweepSpec BetaSpec() {
  core::SweepSpec spec;
  spec.name = "beta";
  spec.axes.extras = {{"k", {{"x", 7}, {"y", 8}, {"z", 9}}}};
  spec.repetitions = 4;
  spec.metrics = {{"v", core::MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const core::SweepRunContext& ctx) {
    return std::vector<double>{static_cast<double>(ctx.point.Extra("k")->value) * 10.0 +
                               ctx.repetition};
  };
  return spec;
}

std::vector<SweepInventory> Inventories() {
  return {{"synthetic", "alpha", 5, 12}, {"synthetic", "beta", 3, 4}};
}

/// Mimics the bench_suite worker's UnitRunner: the bench body runs both
/// sweeps, the unit's shard/sweep-filter select what actually executes, and
/// partial files land in the stage directory.
UnitRunner SyntheticRunner() {
  return [](const WorkUnit& unit, const std::string& stage_dir) {
    for (core::SweepSpec spec : {AlphaSpec(), BetaSpec()}) {
      spec.shard.points = unit.points;
      spec.shard.rep_begin = unit.rep_begin;
      spec.shard.rep_end = unit.rep_end;
      spec.only_sweep = unit.sweep;
      const core::SweepResult result = core::RunSweep(spec);
      if (!core::WriteSweepData(result, stage_dir)) return 1;
    }
    return 0;
  };
}

/// Initialises a queue over the two synthetic sweeps, split at
/// `max_runs_per_unit` runs per unit.
WorkQueue MakeQueue(const std::string& root, std::size_t max_runs_per_unit) {
  const std::vector<SweepInventory> sweeps = Inventories();
  const std::vector<WorkUnit> units = PlanUnits(sweeps, max_runs_per_unit);
  WorkQueue::Manifest manifest;
  manifest.max_runs_per_unit = max_runs_per_unit;
  manifest.unit_count = units.size();
  manifest.sweeps = sweeps;
  std::string error;
  EXPECT_TRUE(WorkQueue::Init(root, manifest, units, &error)) << error;
  std::optional<WorkQueue> queue = WorkQueue::Open(root, &error);
  EXPECT_TRUE(queue.has_value()) << error;
  return *queue;
}

TEST(PlanUnits, GroupsCheapPointsAndSplitsExpensiveOnes) {
  const std::vector<WorkUnit> units = PlanUnits(Inventories(), 5);
  // alpha: 12 repetitions > 5 -> per-point windows [0,5) [5,10) [10,12),
  // 5 points x 3 windows; beta: 4 repetitions, 5/4 -> 1 point per unit.
  ASSERT_EQ(units.size(), 15u + 3u);
  std::set<std::string> ids;
  std::size_t windowed = 0;
  for (const WorkUnit& unit : units) {
    EXPECT_TRUE(ids.insert(unit.id).second) << unit.id;
    EXPECT_LE(unit.runs, 5u);
    if (unit.windowed()) ++windowed;
  }
  EXPECT_EQ(windowed, 15u);
  EXPECT_EQ(units[0].sweep, "alpha");
  EXPECT_EQ(units[0].points, std::vector<std::size_t>{0});
  EXPECT_EQ(units[0].rep_begin, 0u);
  EXPECT_EQ(units[0].rep_end, 5u);
  EXPECT_EQ(units[2].rep_begin, 10u);
  EXPECT_EQ(units[2].rep_end, 12u);

  // A generous budget puts several points into one unit.
  const std::vector<WorkUnit> coarse = PlanUnits(Inventories(), 1000);
  ASSERT_EQ(coarse.size(), 2u);
  EXPECT_EQ(coarse[0].points.size(), 5u);
  EXPECT_FALSE(coarse[0].windowed());
}

TEST(WorkUnitJson, RoundTrips) {
  WorkUnit unit;
  unit.id = "u00007";
  unit.bench = "synthetic";
  unit.sweep = "alpha";
  unit.points = {3, 1, 4};
  unit.rep_begin = 5;
  unit.rep_end = 10;
  unit.runs = 15;
  unit.spec_hash = 0xfcf4900536dafe9full;
  unit.attempt = 2;
  std::string error;
  const std::optional<WorkUnit> parsed = ParseWorkUnitJson(WorkUnitJson(unit), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, unit.id);
  EXPECT_EQ(parsed->bench, unit.bench);
  EXPECT_EQ(parsed->sweep, unit.sweep);
  EXPECT_EQ(parsed->points, unit.points);
  EXPECT_EQ(parsed->rep_begin, 5u);
  EXPECT_EQ(parsed->rep_end, 10u);
  EXPECT_EQ(parsed->runs, 15u);
  EXPECT_EQ(parsed->spec_hash, 0xfcf4900536dafe9full);
  EXPECT_EQ(parsed->attempt, 2u);

  EXPECT_FALSE(ParseWorkUnitJson("{}", &error).has_value());
  EXPECT_FALSE(ParseWorkUnitJson("not json", &error).has_value());
}

TEST(WorkUnitJson, MeasuredCostRoundTripsAndStaysOffLegacyDocuments) {
  WorkUnit unit;
  unit.id = "u00001";
  unit.bench = "synthetic";
  unit.sweep = "alpha";
  unit.points = {0};
  unit.runs = 5;

  // Unmeasured units (todo/active) serialize without the cost fields, so
  // pre-telemetry queue documents keep their exact bytes.
  const std::string plain = WorkUnitJson(unit);
  EXPECT_EQ(plain.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(plain.find("worker"), std::string::npos);

  unit.wall_seconds = 1.25;
  unit.runs_per_second = 4.0;
  unit.worker = "host-42";
  std::string error;
  const std::optional<WorkUnit> parsed = ParseWorkUnitJson(WorkUnitJson(unit), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_DOUBLE_EQ(parsed->wall_seconds, 1.25);
  EXPECT_DOUBLE_EQ(parsed->runs_per_second, 4.0);
  EXPECT_EQ(parsed->worker, "host-42");

  // Legacy documents parse with the fields at their zero defaults.
  const std::optional<WorkUnit> legacy = ParseWorkUnitJson(plain, &error);
  ASSERT_TRUE(legacy.has_value()) << error;
  EXPECT_EQ(legacy->wall_seconds, 0.0);
  EXPECT_TRUE(legacy->worker.empty());
}

TEST(WorkQueue, TimedPublishStampsMeasuredCostIntoTheDoneMarker) {
  const std::string root = Scratch("timed_publish");
  const WorkQueue queue = MakeQueue(root, 1000);
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("w1");
  ASSERT_TRUE(claim.has_value());
  const std::string stage = queue.StageDir(*claim);
  std::ofstream(fs::path(stage) / "alpha_sweep.points.json") << "{}";

  WorkQueue::UnitTiming timing;
  timing.wall_seconds = 2.5;
  timing.runs_per_second = 24.0;
  ASSERT_TRUE(queue.Publish(*claim, &timing));
  EXPECT_EQ(queue.UnitState(claim->unit.id), "done");

  const std::string marker =
      SlurpFile((fs::path(root) / "done" / (claim->unit.id + ".json")).string());
  std::string error;
  const std::optional<WorkUnit> done = ParseWorkUnitJson(marker, &error);
  ASSERT_TRUE(done.has_value()) << error;
  EXPECT_DOUBLE_EQ(done->wall_seconds, 2.5);
  EXPECT_DOUBLE_EQ(done->runs_per_second, 24.0);
  EXPECT_EQ(done->worker, "w1");
  // The lease must be gone — not lingering in active/.
  EXPECT_EQ(queue.GetStatus().active, 0u);
}

TEST(WorkQueue, QueueStatusJsonRoundTripsThroughTheParser) {
  const std::string root = Scratch("status_json");
  const WorkQueue queue = MakeQueue(root, 1000);  // 2 units

  // One worker publishes a timed unit and reports progress; a second one
  // heartbeats in the legacy plain-text format.
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("fast-worker");
  ASSERT_TRUE(claim.has_value());
  const std::string stage = queue.StageDir(*claim);
  std::ofstream(fs::path(stage) / "alpha_sweep.points.json") << "{}";
  WorkQueue::UnitTiming timing;
  timing.wall_seconds = 0.5;
  timing.runs_per_second = 120.0;
  ASSERT_TRUE(queue.Publish(*claim, &timing));
  WorkQueue::WorkerProgress progress;
  progress.units_done = 1;
  progress.wall_seconds_total = 0.5;
  progress.runs_per_second = 120.0;
  ASSERT_TRUE(queue.Heartbeat("fast-worker", &progress));
  ASSERT_TRUE(queue.Heartbeat("legacy-worker"));

  const std::string json = QueueStatusJson(queue);
  std::string error;
  const std::optional<core::JsonValue> doc = core::JsonValue::Parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  EXPECT_EQ(doc->GetString("format"), "quicer-queue-status-v1");
  EXPECT_EQ(static_cast<std::size_t>(doc->GetNumber("todo")), 1u);
  EXPECT_EQ(static_cast<std::size_t>(doc->GetNumber("done")), 1u);
  EXPECT_EQ(static_cast<std::size_t>(doc->GetNumber("results")), 1u);
  EXPECT_EQ(static_cast<std::size_t>(doc->GetNumber("measured_units")), 1u);
  EXPECT_DOUBLE_EQ(doc->GetNumber("measured_wall_seconds"), 0.5);

  const core::JsonValue* workers = doc->Get("workers");
  ASSERT_NE(workers, nullptr);
  bool fast_seen = false;
  bool legacy_seen = false;
  for (const core::JsonValue& worker : workers->Items()) {
    if (worker.GetString("worker") == "fast-worker") {
      fast_seen = true;
      EXPECT_EQ(static_cast<std::size_t>(worker.GetNumber("units_done")), 1u);
      EXPECT_DOUBLE_EQ(worker.GetNumber("runs_per_second"), 120.0);
    }
    if (worker.GetString("worker") == "legacy-worker") {
      legacy_seen = true;
      EXPECT_EQ(worker.Get("units_done"), nullptr);  // plain beat: no progress
    }
  }
  EXPECT_TRUE(fast_seen);
  EXPECT_TRUE(legacy_seen);

  const core::JsonValue* done_units = doc->Get("done_units");
  ASSERT_NE(done_units, nullptr);
  bool marker_seen = false;
  for (const core::JsonValue& done : done_units->Items()) {
    if (done.GetString("id") != claim->unit.id) continue;
    marker_seen = true;
    EXPECT_DOUBLE_EQ(done.GetNumber("wall_seconds"), 0.5);
    EXPECT_EQ(done.GetString("worker"), "fast-worker");
  }
  EXPECT_TRUE(marker_seen);
}

TEST(Worker, StampsMeasuredWallTimesIntoDoneMarkersAndHeartbeat) {
  const std::string root = Scratch("worker_timing");
  const WorkQueue queue = MakeQueue(root, 1000);  // 2 units
  WorkerOptions options;
  options.worker_id = "timed";
  options.wait_for_stragglers = false;
  const WorkerStats stats = RunWorker(queue, options, SyntheticRunner());
  ASSERT_EQ(stats.units_done, 2u);
  EXPECT_GT(stats.wall_seconds_total, 0.0);
  EXPECT_GT(stats.runs_total, 0u);

  // Every done/ marker carries the measurement.
  for (const WorkUnit& unit : queue.Units()) {
    const std::string marker =
        SlurpFile((fs::path(root) / "done" / (unit.id + ".json")).string());
    std::string error;
    const std::optional<WorkUnit> done = ParseWorkUnitJson(marker, &error);
    ASSERT_TRUE(done.has_value()) << error;
    EXPECT_GT(done->wall_seconds, 0.0) << unit.id;
    EXPECT_GT(done->runs_per_second, 0.0) << unit.id;
    EXPECT_EQ(done->worker, "timed") << unit.id;
  }
}

TEST(PlanUnits, PropagatesTheSweepSpecHash) {
  std::vector<SweepInventory> sweeps = Inventories();
  sweeps[0].spec_hash = 0x1111u;
  sweeps[1].spec_hash = 0x2222u;
  for (const WorkUnit& unit : PlanUnits(sweeps, 5)) {
    EXPECT_EQ(unit.spec_hash, unit.sweep == "alpha" ? 0x1111u : 0x2222u) << unit.id;
  }
}

TEST(WorkQueue, ClaimsAreExclusiveAndMoveThroughStates) {
  const std::string root = Scratch("claims");
  const WorkQueue queue = MakeQueue(root, 1000);  // 2 units
  EXPECT_EQ(queue.GetStatus().todo, 2u);

  std::optional<WorkQueue::Claim> first = queue.TryClaim("w1");
  ASSERT_TRUE(first.has_value());
  std::optional<WorkQueue::Claim> second = queue.TryClaim("w2");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->unit.id, second->unit.id);
  EXPECT_FALSE(queue.TryClaim("w3").has_value());  // drained
  EXPECT_EQ(queue.GetStatus().active, 2u);
  EXPECT_EQ(queue.UnitState(first->unit.id), "active (w1)");

  // Publish w1's unit: stage a file, rename into results/, lease to done/.
  const std::string stage = queue.StageDir(*first);
  std::ofstream(fs::path(stage) / "alpha_sweep.points.json") << "{}";
  EXPECT_TRUE(queue.Publish(*first));
  EXPECT_TRUE(queue.HasResult(first->unit.id));
  EXPECT_EQ(queue.UnitState(first->unit.id), "done");

  // A zombie (reclaim race) publishing the same unit later loses quietly:
  // the first results stay, the zombie's staging is discarded.
  WorkQueue::Claim zombie{first->unit, "zombie"};
  const std::string zombie_stage = queue.StageDir(zombie);
  std::ofstream(fs::path(zombie_stage) / "other.json") << "{}";
  EXPECT_TRUE(queue.Publish(zombie));
  EXPECT_FALSE(fs::exists(zombie_stage));
  EXPECT_TRUE(fs::exists(fs::path(queue.ResultDir(first->unit.id)) /
                         "alpha_sweep.points.json"));

  // Failing a unit parks it in failed/ and never retries it.
  EXPECT_TRUE(queue.Fail(*second));
  EXPECT_EQ(queue.GetStatus().failed, 1u);
  EXPECT_EQ(queue.UnitState(second->unit.id), "failed (w2)");
  EXPECT_FALSE(queue.TryClaim("w1").has_value());

  // Units() sees every unit regardless of state.
  EXPECT_EQ(queue.Units().size(), 2u);
}

TEST(WorkQueue, StaleLeasesAreReclaimed) {
  const std::string root = Scratch("reclaim");
  const WorkQueue queue = MakeQueue(root, 1000);
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("dead");
  ASSERT_TRUE(claim.has_value());

  // A fresh heartbeat protects the lease.
  queue.Heartbeat("dead");
  EXPECT_EQ(queue.ReclaimStale(30.0), 0u);
  // With a zero timeout everything held by a silent worker is stale.
  EXPECT_EQ(queue.ReclaimStale(0.0), 1u);
  EXPECT_EQ(queue.GetStatus().active, 0u);
  EXPECT_EQ(queue.UnitState(claim->unit.id), "todo");
  // The reclaimed unit is claimable again.
  EXPECT_TRUE(queue.TryClaim("w2").has_value());
}

TEST(WorkQueue, CorruptUnitFilesAreParkedNotSpunOn) {
  const std::string root = Scratch("corrupt");
  const WorkQueue queue = MakeQueue(root, 1000);
  std::ofstream(fs::path(root) / "todo" / "u99999.json") << "not json";
  std::size_t claimed = 0;
  while (queue.TryClaim("w").has_value()) ++claimed;
  EXPECT_EQ(claimed, 2u);
  EXPECT_EQ(queue.GetStatus().failed, 1u);
  std::string error;
  queue.Units(&error);
  EXPECT_NE(error.find("u99999"), std::string::npos);
}

TEST(WorkQueue, InitRejectsDuplicateSweepNamesAndDoubleInit) {
  const std::string root = Scratch("init");
  WorkQueue::Manifest manifest;
  manifest.sweeps = {{"b1", "same", 2, 3}, {"b2", "same", 4, 5}};
  manifest.unit_count = 1;
  WorkUnit unit;
  unit.id = "u00000";
  unit.bench = "b1";
  unit.sweep = "same";
  unit.points = {0};
  std::string error;
  EXPECT_FALSE(WorkQueue::Init(root, manifest, {unit}, &error));
  EXPECT_NE(error.find("duplicate sweep name"), std::string::npos);

  MakeQueue(Scratch("init"), 1000);
  EXPECT_FALSE(WorkQueue::Init(Scratch("init2") + "/../dist_init", manifest, {unit}, &error));

  // A manifest-less root with leftover todo/ state (an interrupted init)
  // must be refused, not silently re-planned on top of stale units.
  const std::string wreck = Scratch("init_wreck");
  fs::create_directories(fs::path(wreck) / "todo");
  std::ofstream(fs::path(wreck) / "todo" / "u99990.json") << "{}";
  WorkQueue::Manifest clean;
  clean.sweeps = {{"b1", "solo", 2, 3}};
  clean.unit_count = 1;
  WorkUnit solo = unit;
  solo.sweep = "solo";
  EXPECT_FALSE(WorkQueue::Init(wreck, clean, {solo}, &error));
  EXPECT_NE(error.find("leftover state"), std::string::npos);
}

// The acceptance contract, in-process: a queue over two sweeps (one with
// repetition-split points), three workers — one of which "crashes" holding
// a lease and never publishes — and a collect whose exports are
// byte-identical to a single-process run.
TEST(DistE2E, ThreeWorkersWithOneCrashReproduceSingleProcessExports) {
  const std::string root = Scratch("e2e");
  const WorkQueue queue = MakeQueue(root, 5);  // 18 units, alpha rep-split
  const std::size_t total_units = queue.Units().size();
  ASSERT_EQ(total_units, 18u);

  // Worker 0 claims a unit and crashes: no heartbeat, no publish, no
  // release — exactly what SIGKILL leaves behind.
  std::optional<WorkQueue::Claim> crashed = queue.TryClaim("crashed-worker");
  ASSERT_TRUE(crashed.has_value());

  WorkerOptions options;
  options.lease_timeout_seconds = 0.05;
  options.poll_seconds = 0.005;

  // Worker 1 executes a handful of units and stops (a host leaving the
  // pool early); worker 2 drains the rest, reclaiming the crashed unit
  // once its lease goes stale.
  options.worker_id = "w1";
  options.max_units = 3;
  const WorkerStats w1 = RunWorker(queue, options, SyntheticRunner());
  EXPECT_EQ(w1.units_done, 3u);
  EXPECT_EQ(w1.units_failed, 0u);

  options.worker_id = "w2";
  options.max_units = 0;
  const WorkerStats w2 = RunWorker(queue, options, SyntheticRunner());
  EXPECT_EQ(w2.units_failed, 0u);
  EXPECT_EQ(w1.units_done + w2.units_done, total_units);
  EXPECT_GE(w2.units_reclaimed + w1.units_reclaimed, 1u);

  const WorkQueue::Status status = queue.GetStatus();
  EXPECT_EQ(status.todo, 0u);
  EXPECT_EQ(status.active, 0u);
  EXPECT_EQ(status.results, total_units);

  const std::string out = Scratch("e2e_out");
  CollectReport report;
  ASSERT_TRUE(Collect(queue, out, &report)) << report.error;
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.units_with_results, total_units);

  // Byte-identity against a single-process run of both sweeps.
  const std::string ref = Scratch("e2e_ref");
  for (const core::SweepSpec& spec : {AlphaSpec(), BetaSpec()}) {
    ASSERT_TRUE(core::WriteSweepData(core::RunSweep(spec), ref));
  }
  for (const char* name : {"alpha", "beta"}) {
    for (const char* ext : {"_sweep.csv", "_sweep.json"}) {
      const std::string file = std::string(name) + ext;
      EXPECT_EQ(SlurpFile(out + "/" + file), SlurpFile(ref + "/" + file)) << file;
    }
  }
}

TEST(Collect, ReportsMissingUnitsWithTheirState) {
  const std::string root = Scratch("missing");
  const WorkQueue queue = MakeQueue(root, 5);
  // Execute only one unit; everything else stays todo.
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("w1");
  ASSERT_TRUE(claim.has_value());
  ASSERT_EQ(SyntheticRunner()(claim->unit, queue.StageDir(*claim)), 0);
  ASSERT_TRUE(queue.Publish(*claim));

  CollectReport report;
  EXPECT_FALSE(Collect(queue, Scratch("missing_out"), &report));
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.units_with_results, 1u);
  ASSERT_EQ(report.missing_units.size(), 17u);
  EXPECT_NE(report.missing_units.front().find("[todo]"), std::string::npos);
  EXPECT_NE(report.error.find("units have no results yet"), std::string::npos);
}

TEST(WorkQueue, RetryRequeuesWithAPersistedAttemptCount) {
  const std::string root = Scratch("retry");
  const WorkQueue queue = MakeQueue(root, 1000);  // 2 units
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("w1");
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->unit.attempt, 0u);

  // Retry moves the unit back to todo with the bumped attempt recorded in
  // the unit file, so the budget survives a different worker claiming it.
  ASSERT_TRUE(queue.Retry(*claim));
  EXPECT_EQ(queue.UnitState(claim->unit.id), "todo");
  std::optional<WorkQueue::Claim> again = queue.TryClaim("w2");
  while (again.has_value() && again->unit.id != claim->unit.id) {
    again = queue.TryClaim("w2");
  }
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->unit.attempt, 1u);

  ASSERT_TRUE(queue.Retry(*again));
  std::optional<WorkQueue::Claim> third = queue.TryClaim("w3");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->unit.attempt, 2u);

  // Retrying a lease that no longer exists (reclaimed elsewhere) is a no-op.
  ASSERT_TRUE(queue.Fail(*third));
  EXPECT_FALSE(queue.Retry(*third));
}

TEST(Worker, RetryBudgetRequeuesThenParks) {
  const std::string root = Scratch("retry_budget");
  const WorkQueue queue = MakeQueue(root, 1000);  // one alpha unit, one beta unit

  // beta's runner fails deterministically; alpha succeeds.
  UnitRunner runner = [](const WorkUnit& unit, const std::string& stage_dir) {
    if (unit.sweep == "beta") return 9;
    return SyntheticRunner()(unit, stage_dir);
  };
  WorkerOptions options;
  options.worker_id = "w1";
  options.wait_for_stragglers = false;
  options.retry_budget = 2;
  const WorkerStats stats = RunWorker(queue, options, runner);
  EXPECT_EQ(stats.units_done, 1u);
  EXPECT_EQ(stats.units_retried, 2u);  // attempts 0 and 1 re-queued
  EXPECT_EQ(stats.units_failed, 1u);   // attempt 2 spent the budget
  EXPECT_EQ(queue.GetStatus().failed, 1u);
  EXPECT_EQ(queue.GetStatus().todo, 0u);

  // With a zero budget the unit parks on first failure.
  const std::string root2 = Scratch("retry_budget0");
  const WorkQueue queue2 = MakeQueue(root2, 1000);
  options.retry_budget = 0;
  const WorkerStats stats2 = RunWorker(queue2, options, runner);
  EXPECT_EQ(stats2.units_retried, 0u);
  EXPECT_EQ(stats2.units_failed, 1u);
}

TEST(WorkQueue, HeartbeatAgesListWorkersAndTheirLeases) {
  const std::string root = Scratch("heartbeats");
  const WorkQueue queue = MakeQueue(root, 1000);
  ASSERT_TRUE(queue.Heartbeat("idle-worker"));
  std::optional<WorkQueue::Claim> claim = queue.TryClaim("busy-worker");
  ASSERT_TRUE(claim.has_value());
  queue.Heartbeat("busy-worker");

  const std::vector<WorkQueue::HeartbeatAge> ages = queue.HeartbeatAges();
  ASSERT_EQ(ages.size(), 2u);
  EXPECT_EQ(ages[0].worker, "busy-worker");
  EXPECT_EQ(ages[0].active_units, 1u);
  EXPECT_LT(ages[0].age_seconds, 60.0);
  EXPECT_EQ(ages[1].worker, "idle-worker");
  EXPECT_EQ(ages[1].active_units, 0u);
}

TEST(Collect, RejectsASpecHashMismatch) {
  // The manifest plans the grid with one content-hash; a worker publishes
  // results computed from a different grid definition (RunSweep stamps the
  // real hash into the partial). Collect must refuse to merge them.
  const std::string root = Scratch("hash_mismatch");
  std::vector<SweepInventory> sweeps = {{"synthetic", "beta", 3, 4, 0xdeadbeefu}};
  const std::vector<WorkUnit> units = PlanUnits(sweeps, 1000);
  WorkQueue::Manifest manifest;
  manifest.unit_count = units.size();
  manifest.sweeps = sweeps;
  std::string error;
  ASSERT_TRUE(WorkQueue::Init(root, manifest, units, &error)) << error;
  std::optional<WorkQueue> queue = WorkQueue::Open(root, &error);
  ASSERT_TRUE(queue.has_value()) << error;

  WorkerOptions options;
  options.worker_id = "w1";
  options.wait_for_stragglers = false;
  UnitRunner runner = [](const WorkUnit& unit, const std::string& stage_dir) {
    core::SweepSpec spec = BetaSpec();
    spec.shard.points = unit.points;
    spec.only_sweep = unit.sweep;
    return core::WriteSweepData(core::RunSweep(spec), stage_dir) ? 0 : 1;
  };
  const WorkerStats stats = RunWorker(*queue, options, runner);
  ASSERT_EQ(stats.units_done, 1u);

  CollectReport report;
  EXPECT_FALSE(Collect(*queue, Scratch("hash_mismatch_out"), &report));
  EXPECT_NE(report.error.find("spec hash"), std::string::npos) << report.error;
  EXPECT_NE(report.error.find("different grid definition"), std::string::npos)
      << report.error;
}

TEST(Collect, RejectsACoverageGap) {
  const std::string root = Scratch("gap");
  std::vector<WorkUnit> units = PlanUnits(Inventories(), 5);
  units.pop_back();  // drop beta's last point: a coverage gap
  WorkQueue::Manifest manifest;
  manifest.unit_count = units.size();
  manifest.sweeps = Inventories();
  std::string error;
  ASSERT_TRUE(WorkQueue::Init(root, manifest, units, &error)) << error;
  std::optional<WorkQueue> queue = WorkQueue::Open(root, &error);
  ASSERT_TRUE(queue.has_value()) << error;

  CollectReport report;
  EXPECT_FALSE(Collect(*queue, Scratch("gap_out"), &report));
  EXPECT_NE(report.error.find("covered by no unit"), std::string::npos);
}

TEST(Collect, RejectsOverlappingRepetitionWindows) {
  const std::string root = Scratch("overlap");
  std::vector<WorkUnit> units = PlanUnits(Inventories(), 5);
  units[1].rep_begin = 3;  // alpha point 0: [0,5) and [3,10) overlap
  WorkQueue::Manifest manifest;
  manifest.unit_count = units.size();
  manifest.sweeps = Inventories();
  std::string error;
  ASSERT_TRUE(WorkQueue::Init(root, manifest, units, &error)) << error;
  std::optional<WorkQueue> queue = WorkQueue::Open(root, &error);
  ASSERT_TRUE(queue.has_value()) << error;

  CollectReport report;
  EXPECT_FALSE(Collect(*queue, Scratch("overlap_out"), &report));
  EXPECT_NE(report.error.find("covered twice"), std::string::npos);
}

}  // namespace
}  // namespace quicer::dist
