// ND004 fixture: unordered-container iteration in an export-writing file.
#include <string>
#include <unordered_map>

namespace quicer {

std::string JsonEscape(const std::string& s);

std::string WriteCountsJson() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  std::string out = "{";
  for (const auto& entry : counts) {
    out += "\"" + JsonEscape(entry.first) + "\":";
    out += std::to_string(entry.second) + ",";
  }
  out += "}";
  return out;
}

}  // namespace quicer
