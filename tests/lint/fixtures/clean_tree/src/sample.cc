// Negative fixture: deterministic code that must produce zero findings.
// Mentions of std::rand or steady_clock in comments must not trip the
// determinism rules, and value-comparing sort predicates are fine.
#include <algorithm>
#include <string>
#include <vector>

namespace quicer {

struct Row {
  int key;
  std::string label;
};

void SortRows(std::vector<Row>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
}

void SortByLabel(std::vector<const Row*>& rows) {
  std::sort(rows.begin(), rows.end(), [](const Row* a, const Row* b) {
    return a->label < b->label;  // dereferenced: orders by content, not address
  });
}

std::string DescribeCsv(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& row : rows) out += row.label + "\n";
  return out;
}

}  // namespace quicer
