// ND003 fixture: environment read outside the bench_suite driver.
#include <cstdlib>
#include <string>

namespace quicer {

std::string DataDir() {
  if (const char* dir = std::getenv("QUICER_SECRET_DIR")) return dir;
  return "data";
}

}  // namespace quicer
