// ND005 fixture: sort predicate ordering by pointer value.
#include <algorithm>
#include <vector>

namespace quicer {

struct Node {
  int id;
};

void SortNodes(std::vector<const Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });
}

}  // namespace quicer
