// TL001 fixture registry header.
#pragma once
#include <cstddef>

namespace quicer::obs {

enum Counter : std::size_t {
  kAlpha = 0,
  kBeta,
  kCounterCount
};

}  // namespace quicer::obs
