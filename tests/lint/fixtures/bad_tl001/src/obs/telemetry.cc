// TL001 fixture: one descriptor violates the counter naming policy.
#include "obs/telemetry.h"

namespace quicer::obs {

struct CounterDesc {
  const char* name;
};

constexpr CounterDesc kDescriptors[] = {{
    {"sim.alpha_total"},
    {"SimBetaTotal"},
}};

}  // namespace quicer::obs
