// CC001 fixture: a serializable field missing from the descriptor table.
#pragma once

namespace quicer::core {

struct ExperimentConfig {
  double rtt_ms = 9.0;
  int orphan_knob = 3;
};

}  // namespace quicer::core
