// CC001 fixture codec: covers rtt_ms only; orphan_knob is missing.
#include "core/experiment.h"

namespace quicer::core {

double WriteRtt(const ExperimentConfig& c) { return c.rtt_ms; }

}  // namespace quicer::core
