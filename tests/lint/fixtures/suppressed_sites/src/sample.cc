// Suppression fixture: every banned pattern below carries a justified
// per-site or file-wide allowance, so the tree must lint clean.
#include <chrono>
#include <cstdlib>

namespace quicer {

double MeasureSetupSeconds() {
  // lint:allow(ND002): wall-clock measurement of setup cost, never exported
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();  // lint:allow(ND002): same measurement
  return std::chrono::duration<double>(end - start).count();
}

const char* CacheDir() {
  // lint:allow(ND003): operator-facing cache location, not run behaviour
  return std::getenv("SAMPLE_CACHE_DIR");
}

}  // namespace quicer
