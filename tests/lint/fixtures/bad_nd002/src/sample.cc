// ND002 fixture: wall clocks leaking into simulation code.
#include <chrono>
#include <ctime>

namespace quicer {

long StampRun() {
  const auto wall = std::chrono::system_clock::now();
  return wall.time_since_epoch().count();
}

long StampMonotonic() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long StampLibc() { return static_cast<long>(std::time(nullptr)); }

}  // namespace quicer
