// ND001 fixture: libc randomness in simulation code.
#include <cstdlib>

namespace quicer {

int DrawJitter() {
  // The forked sim::Rng is the only legal randomness source.
  return std::rand() % 7;
}

void SeedLegacy(unsigned seed) { srand(seed); }

}  // namespace quicer
