#include "clients/profiles.h"

#include <gtest/gtest.h>

#include "clients/server_profiles.h"

namespace quicer::clients {
namespace {

TEST(Profiles, Table4DefaultPtos) {
  EXPECT_EQ(DefaultPto(ClientImpl::kAioquic), sim::Millis(200));
  EXPECT_EQ(DefaultPto(ClientImpl::kGoXNet), sim::Millis(999));
  EXPECT_EQ(DefaultPto(ClientImpl::kMvfst), sim::Millis(100));
  EXPECT_EQ(DefaultPto(ClientImpl::kNeqo), sim::Millis(300));
  EXPECT_EQ(DefaultPto(ClientImpl::kNgtcp2), sim::Millis(300));
  EXPECT_EQ(DefaultPto(ClientImpl::kPicoquic), sim::Millis(250));
  EXPECT_EQ(DefaultPto(ClientImpl::kQuicGo), sim::Millis(200));
  EXPECT_EQ(DefaultPto(ClientImpl::kQuiche), sim::Millis(999));
}

TEST(Profiles, Table4SecondFlightDatagrams) {
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kAioquic), 3);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kGoXNet), 3);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kMvfst), 3);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kNeqo), 2);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kNgtcp2), 3);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kPicoquic), 4);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kQuicGo), 3);
  EXPECT_EQ(SecondFlightDatagrams(ClientImpl::kQuiche), 1);
}

TEST(Profiles, OnlyGoXNetLacksHttp3) {
  for (ClientImpl impl : kAllClients) {
    EXPECT_EQ(SupportsHttp3(impl), impl != ClientImpl::kGoXNet) << Name(impl);
  }
}

TEST(Profiles, PicoquicIgnoresInitialRttSamples) {
  const auto config = MakeClientConfig(ClientImpl::kPicoquic, http::Version::kHttp1);
  EXPECT_FALSE(config.use_initial_space_rtt_samples);
  EXPECT_FALSE(config.rearm_pto_on_empty_inflight);
  EXPECT_FALSE(config.coalesce_acks);
}

TEST(Profiles, MvfstDoesNotProbeOnInstantAck) {
  const auto config = MakeClientConfig(ClientImpl::kMvfst, http::Version::kHttp1);
  EXPECT_FALSE(config.rearm_pto_on_empty_inflight);
  EXPECT_TRUE(config.use_initial_space_rtt_samples);
}

TEST(Profiles, GoXNetMisinitialisesSmoothedRtt) {
  const auto config = MakeClientConfig(ClientImpl::kGoXNet, http::Version::kHttp1);
  ASSERT_TRUE(config.wrong_first_srtt.has_value());
  EXPECT_EQ(*config.wrong_first_srtt, sim::Millis(90));
  EXPECT_GT(config.wrong_first_srtt_probability, 0.0);
  EXPECT_GT(config.processing_jitter, sim::Millis(10));
}

TEST(Profiles, QuicheQuirksGatedToHttp1) {
  const auto h1 = MakeClientConfig(ClientImpl::kQuiche, http::Version::kHttp1);
  EXPECT_TRUE(h1.drop_coalesced_ping_reply);
  EXPECT_TRUE(h1.abort_on_duplicate_cid_retirement);
  EXPECT_TRUE(h1.defer_acks_until_flight);
  const auto h3 = MakeClientConfig(ClientImpl::kQuiche, http::Version::kHttp3);
  EXPECT_FALSE(h3.drop_coalesced_ping_reply);
  EXPECT_FALSE(h3.abort_on_duplicate_cid_retirement);
  EXPECT_TRUE(h3.defer_acks_until_flight);
}

TEST(Profiles, AioquicUsesLegacyRttVarFormula) {
  const auto config = MakeClientConfig(ClientImpl::kAioquic, http::Version::kHttp1);
  EXPECT_EQ(config.rttvar_formula, recovery::RttVarFormula::kAioquicLegacy);
}

TEST(Profiles, AppendixERttVarLogging) {
  // neqo, mvfst and picoquic do not log the RTT variance.
  for (ClientImpl impl : kAllClients) {
    const auto config = MakeClientConfig(impl, http::Version::kHttp1);
    const bool expects_no_rttvar = impl == ClientImpl::kNeqo || impl == ClientImpl::kMvfst ||
                                   impl == ClientImpl::kPicoquic;
    EXPECT_EQ(config.trace.logs_rttvar, !expects_no_rttvar) << Name(impl);
  }
}

TEST(Profiles, NamesAreUnique) {
  std::set<std::string_view> names;
  for (ClientImpl impl : kAllClients) names.insert(Name(impl));
  EXPECT_EQ(names.size(), kAllClients.size());
}

TEST(ServerProfiles, Table3Values) {
  const auto& aioquic = GetServerAckDelayProfile(ServerImpl::kAioquic);
  ASSERT_TRUE(aioquic.initial_ack_delay.has_value());
  EXPECT_EQ(*aioquic.initial_ack_delay, sim::Millis(3.3));
  EXPECT_FALSE(aioquic.handshake_ack_delay.has_value());

  const auto& msquic = GetServerAckDelayProfile(ServerImpl::kMsquic);
  EXPECT_FALSE(msquic.initial_ack_delay.has_value());

  const auto& s2n = GetServerAckDelayProfile(ServerImpl::kS2nQuic);
  ASSERT_TRUE(s2n.initial_ack_delay.has_value());
  EXPECT_GT(*s2n.initial_ack_delay, sim::Millis(10));  // exceeds typical RTTs

  const auto& lsquic = GetServerAckDelayProfile(ServerImpl::kLsquic);
  ASSERT_TRUE(lsquic.handshake_ack_delay.has_value());
  EXPECT_EQ(*lsquic.handshake_ack_delay, sim::Millis(0.2));
}

TEST(ServerProfiles, SixteenImplementations) {
  EXPECT_EQ(kAllServers.size(), 16u);
  std::set<std::string_view> names;
  for (ServerImpl impl : kAllServers) names.insert(Name(impl));
  EXPECT_EQ(names.size(), 16u);
}

TEST(ServerProfiles, ZeroReportersCountMatchesPaper) {
  // Table 3: 6 implementations report 0 ms in the first Initial ACK
  // (go-x-net, kwik, neqo, nginx, ngtcp2, quic-go).
  int zero_reporters = 0;
  for (ServerImpl impl : kAllServers) {
    const auto& profile = GetServerAckDelayProfile(impl);
    if (profile.initial_ack_delay.has_value() && *profile.initial_ack_delay == 0) {
      ++zero_reporters;
    }
  }
  EXPECT_EQ(zero_reporters, 6);
}

TEST(ServerProfiles, MakeAckPolicyReflectsReportedDelay) {
  const auto zero = MakeAckPolicy(ServerImpl::kQuicGo);
  EXPECT_EQ(zero.report_mode, quic::AckDelayReportMode::kZero);
  const auto fixed = MakeAckPolicy(ServerImpl::kS2nQuic);
  EXPECT_EQ(fixed.report_mode, quic::AckDelayReportMode::kFixed);
  EXPECT_GT(fixed.fixed_report_value, 0);
}

}  // namespace
}  // namespace quicer::clients
