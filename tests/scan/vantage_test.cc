// Fig 14 / Appendix G invariants: per-vantage behaviour of the macroscopic
// measurement.
#include <gtest/gtest.h>

#include <map>

#include "scan/population.h"
#include "scan/prober.h"
#include "stats/stats.h"

namespace quicer::scan {
namespace {

class VantageSweep : public ::testing::TestWithParam<Vantage> {};

TEST_P(VantageSweep, CloudflareIackShareHighEverywhere) {
  TrancoPopulation population(30000, 1);
  Prober prober(5);
  int total = 0;
  int iack = 0;
  for (const Domain& domain : population.domains()) {
    if (!domain.speaks_quic || domain.cdn != Cdn::kCloudflare) continue;
    const ProbeResult result = prober.Probe(domain, GetParam(), 0);
    if (!result.success) continue;
    ++total;
    if (result.iack_observed) ++iack;
  }
  ASSERT_GT(total, 1000);
  EXPECT_GT(static_cast<double>(iack) / total, 0.95) << Name(GetParam());
}

TEST_P(VantageSweep, CloudflareAckShDelayMedianStable) {
  // Fig 14: IACK latency similar across locations (the delay is a frontend
  // property, not a path property).
  TrancoPopulation population(30000, 1);
  Prober prober(5);
  std::vector<double> delays;
  for (const Domain& domain : population.domains()) {
    if (!domain.speaks_quic || domain.cdn != Cdn::kCloudflare) continue;
    const ProbeResult result = prober.Probe(domain, GetParam(), 0);
    if (result.iack_observed) delays.push_back(result.ack_sh_delay_ms);
  }
  ASSERT_GT(delays.size(), 500u);
  EXPECT_NEAR(stats::Median(delays), 3.2, 0.8) << Name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVantages, VantageSweep, ::testing::ValuesIn(kAllVantages),
                         [](const ::testing::TestParamInfo<Vantage>& param_info) {
                           switch (param_info.param) {
                             case Vantage::kHamburg: return "Hamburg";
                             case Vantage::kLosAngeles: return "LosAngeles";
                             case Vantage::kSaoPaulo: return "SaoPaulo";
                             case Vantage::kHongKong: return "HongKong";
                           }
                           return "Unknown";
                         });

TEST(VantageEffects, GoogleIackVisibleMainlyFromSaoPaulo) {
  TrancoPopulation population(100000, 1);
  Prober prober(5);
  std::map<Vantage, std::pair<int, int>> counts;  // {iack, total}
  for (const Domain& domain : population.domains()) {
    if (!domain.speaks_quic || domain.cdn != Cdn::kGoogle) continue;
    for (Vantage vantage : kAllVantages) {
      const ProbeResult result = prober.Probe(domain, vantage, 0);
      auto& [iack, total] = counts[vantage];
      ++total;
      if (result.iack_observed) ++iack;
    }
  }
  const auto share = [&](Vantage v) {
    return static_cast<double>(counts[v].first) / std::max(1, counts[v].second);
  };
  EXPECT_GT(share(Vantage::kSaoPaulo), 0.08);
  for (Vantage far : {Vantage::kHamburg, Vantage::kLosAngeles, Vantage::kHongKong}) {
    EXPECT_LT(share(far), share(Vantage::kSaoPaulo) / 2) << Name(far);
  }
}

TEST(VantageEffects, OthersAreFarFromEveryVantage) {
  // Origin-hosted domains are not anycast: RTTs are much larger than to the
  // big CDNs from every location.
  for (Vantage vantage : kAllVantages) {
    EXPECT_GT(MedianRttMs(vantage, Cdn::kOthers),
              4 * MedianRttMs(vantage, Cdn::kCloudflare))
        << Name(vantage);
  }
}

}  // namespace
}  // namespace quicer::scan
