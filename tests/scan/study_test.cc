#include "scan/study.h"

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace quicer::scan {
namespace {

CloudflareStudyConfig FastConfig() {
  CloudflareStudyConfig config;
  config.hours = 48;
  config.samples_per_hour = 8;
  return config;
}

TEST(DiurnalFactor, NightIsBaseline) {
  EXPECT_DOUBLE_EQ(DiurnalFactor(0, 0.8), 1.0);
  EXPECT_DOUBLE_EQ(DiurnalFactor(3, 0.8), 1.0);
  EXPECT_DOUBLE_EQ(DiurnalFactor(22, 0.8), 1.0);
}

TEST(DiurnalFactor, DaytimePeaksMidAfternoon) {
  EXPECT_GT(DiurnalFactor(13, 0.8), DiurnalFactor(8, 0.8));
  EXPECT_GT(DiurnalFactor(13, 0.8), DiurnalFactor(18, 0.8));
  EXPECT_NEAR(DiurnalFactor(13, 0.8), 1.8, 0.05);
}

TEST(DiurnalFactor, ZeroAmplitudeIsFlat) {
  for (int h = 0; h < 24; ++h) EXPECT_DOUBLE_EQ(DiurnalFactor(h, 0.0), 1.0);
}

TEST(CloudflareStudy, ProducesOnePointPerHour) {
  const auto points = RunCloudflareStudy(FastConfig());
  ASSERT_EQ(points.size(), 48u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].hour, static_cast<int>(i));
  }
}

TEST(CloudflareStudy, SeparateAckPrecedesServerHello) {
  const auto points = RunCloudflareStudy(FastConfig());
  int checked = 0;
  for (const auto& point : points) {
    if (point.median_ack_ms < 0 || point.median_sh_ms < 0) continue;
    EXPECT_LT(point.median_ack_ms, point.median_sh_ms);
    ++checked;
  }
  EXPECT_GT(checked, 40);
}

TEST(CloudflareStudy, DaytimeGapExceedsNighttimeGap) {
  CloudflareStudyConfig config = FastConfig();
  config.hours = 168;
  config.samples_per_hour = 10;
  const auto points = RunCloudflareStudy(config);
  std::vector<double> day_gaps;
  std::vector<double> night_gaps;
  for (const auto& point : points) {
    if (point.median_ack_ms < 0 || point.median_sh_ms < 0) continue;
    const double gap = point.median_sh_ms - point.median_ack_ms;
    const int hour_of_day = point.hour % 24;
    if (hour_of_day >= 10 && hour_of_day <= 16) {
      day_gaps.push_back(gap);
    } else if (hour_of_day <= 4 || hour_of_day >= 22) {
      night_gaps.push_back(gap);
    }
  }
  ASSERT_FALSE(day_gaps.empty());
  ASSERT_FALSE(night_gaps.empty());
  EXPECT_GT(stats::Median(day_gaps), stats::Median(night_gaps));
}

TEST(CloudflareStudy, CoalescedShareTracksCacheProbability) {
  CloudflareStudyConfig config = FastConfig();
  config.cache_probability = 0.5;
  const auto summary = SummarizeStudy(RunCloudflareStudy(config));
  EXPECT_NEAR(summary.coalesced_share, 0.5, 0.12);
}

TEST(CloudflareStudy, SummaryAvoidedInflationIsThreeTimesGap) {
  const auto summary = SummarizeStudy(RunCloudflareStudy(FastConfig()));
  EXPECT_NEAR(summary.avoided_pto_inflation_ms, 3.0 * summary.median_gap_ms, 1e-9);
  // Paper reports 6.3-7.2 ms avoided inflation; ours lands in that region.
  EXPECT_GT(summary.avoided_pto_inflation_ms, 3.0);
  EXPECT_LT(summary.avoided_pto_inflation_ms, 15.0);
}

TEST(CloudflareStudy, DeterministicForSeed) {
  const auto a = SummarizeStudy(RunCloudflareStudy(FastConfig()));
  const auto b = SummarizeStudy(RunCloudflareStudy(FastConfig()));
  EXPECT_DOUBLE_EQ(a.median_ack_ms, b.median_ack_ms);
  EXPECT_DOUBLE_EQ(a.median_gap_ms, b.median_gap_ms);
}

}  // namespace
}  // namespace quicer::scan
