#include <gtest/gtest.h>

#include "scan/cdn_model.h"
#include "scan/population.h"
#include "scan/prober.h"
#include "stats/stats.h"

namespace quicer::scan {
namespace {

TEST(CdnModel, Table5AsnMapping) {
  EXPECT_EQ(CdnFromAsn(13335), Cdn::kCloudflare);
  EXPECT_EQ(CdnFromAsn(209242), Cdn::kCloudflare);
  EXPECT_EQ(CdnFromAsn(16625), Cdn::kAkamai);
  EXPECT_EQ(CdnFromAsn(20940), Cdn::kAkamai);
  EXPECT_EQ(CdnFromAsn(14618), Cdn::kAmazon);
  EXPECT_EQ(CdnFromAsn(16509), Cdn::kAmazon);
  EXPECT_EQ(CdnFromAsn(54113), Cdn::kFastly);
  EXPECT_EQ(CdnFromAsn(15169), Cdn::kGoogle);
  EXPECT_EQ(CdnFromAsn(396982), Cdn::kGoogle);
  EXPECT_EQ(CdnFromAsn(32934), Cdn::kMeta);
  EXPECT_EQ(CdnFromAsn(8075), Cdn::kMicrosoft);
  EXPECT_EQ(CdnFromAsn(64512), Cdn::kOthers);  // unlisted
}

TEST(CdnModel, Table1GroundTruth) {
  EXPECT_EQ(GetCdnProfile(Cdn::kCloudflare).domain_count, 247407);
  EXPECT_NEAR(GetCdnProfile(Cdn::kCloudflare).iack_share, 0.999, 1e-9);
  EXPECT_NEAR(GetCdnProfile(Cdn::kAmazon).iack_share, 0.41, 1e-9);
  EXPECT_NEAR(GetCdnProfile(Cdn::kAkamai).iack_share, 0.322, 1e-9);
  EXPECT_NEAR(GetCdnProfile(Cdn::kGoogle).iack_share, 0.115, 1e-9);
  EXPECT_DOUBLE_EQ(GetCdnProfile(Cdn::kFastly).iack_share, 0.0);
  EXPECT_DOUBLE_EQ(GetCdnProfile(Cdn::kMeta).iack_share, 0.0);
  EXPECT_DOUBLE_EQ(GetCdnProfile(Cdn::kMicrosoft).iack_share, 0.0);
}

TEST(CdnModel, AckShDelaySampling) {
  sim::Rng rng(1);
  const auto& cloudflare = GetCdnProfile(Cdn::kCloudflare);
  EXPECT_DOUBLE_EQ(SampleAckShDelayMs(cloudflare, rng, /*coalesced=*/true), 0.0);
  std::vector<double> delays;
  for (int i = 0; i < 5001; ++i) delays.push_back(SampleAckShDelayMs(cloudflare, rng, false));
  EXPECT_NEAR(stats::Median(delays), 3.2, 0.5);  // Fig 8 median
}

TEST(CdnModel, AkamaiSlowerThanCloudflare) {
  sim::Rng rng(2);
  std::vector<double> akamai;
  std::vector<double> cloudflare;
  for (int i = 0; i < 2000; ++i) {
    akamai.push_back(SampleAckShDelayMs(GetCdnProfile(Cdn::kAkamai), rng, false));
    cloudflare.push_back(SampleAckShDelayMs(GetCdnProfile(Cdn::kCloudflare), rng, false));
  }
  EXPECT_GT(stats::Median(akamai), stats::Median(cloudflare) * 3);
}

TEST(CdnModel, ReportedAckDelayVsRttFig10) {
  sim::Rng rng(3);
  const auto& cloudflare = GetCdnProfile(Cdn::kCloudflare);
  int coalesced_exceeds = 0;
  int iack_exceeds = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (SampleReportedAckDelayMs(cloudflare, 10.0, rng, true) > 10.0) ++coalesced_exceeds;
    if (SampleReportedAckDelayMs(cloudflare, 10.0, rng, false) > 10.0) ++iack_exceeds;
  }
  // Fig 10: 99.9 % of coalesced ACK+SH carry an ack delay exceeding the RTT.
  EXPECT_NEAR(static_cast<double>(coalesced_exceeds) / n, 0.999, 0.01);
  EXPECT_NEAR(static_cast<double>(iack_exceeds) / n, 0.90, 0.02);
}

TEST(Population, CountsScaleWithSize) {
  TrancoPopulation population(100000, 1);
  // Cloudflare: ~247407/1M -> ~24740 at 100k; allow 10 % slack.
  const int cloudflare = population.CountQuic(Cdn::kCloudflare);
  EXPECT_NEAR(cloudflare, 24740, 2500);
  const int akamai = population.CountQuic(Cdn::kAkamai);
  EXPECT_NEAR(akamai, 53, 25);
}

TEST(Population, DeterministicForSeed) {
  TrancoPopulation a(10000, 7);
  TrancoPopulation b(10000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) {
    EXPECT_EQ(a.domains()[i].cdn, b.domains()[i].cdn);
    EXPECT_EQ(a.domains()[i].iack_enabled, b.domains()[i].iack_enabled);
  }
}

TEST(Population, IackShareMatchesGroundTruth) {
  TrancoPopulation population(200000, 3);
  int cloudflare_total = 0;
  int cloudflare_iack = 0;
  for (const Domain& domain : population.domains()) {
    if (!domain.speaks_quic || domain.cdn != Cdn::kCloudflare) continue;
    ++cloudflare_total;
    if (domain.iack_enabled) ++cloudflare_iack;
  }
  ASSERT_GT(cloudflare_total, 1000);
  EXPECT_NEAR(static_cast<double>(cloudflare_iack) / cloudflare_total, 0.999, 0.005);
}

TEST(Population, PopularDomainsCacheMore) {
  TrancoPopulation population(100000, 5);
  std::vector<double> top;
  std::vector<double> tail;
  for (const Domain& domain : population.domains()) {
    if (!domain.speaks_quic || domain.cdn != Cdn::kCloudflare) continue;
    if (domain.rank <= 10000) {
      top.push_back(domain.cache_probability);
    } else if (domain.rank > 90000) {
      tail.push_back(domain.cache_probability);
    }
  }
  ASSERT_FALSE(top.empty());
  ASSERT_FALSE(tail.empty());
  EXPECT_GT(stats::Mean(top), stats::Mean(tail));
}

TEST(Prober, NonQuicDomainFails) {
  Domain domain;
  domain.rank = 1;
  domain.speaks_quic = false;
  Prober prober(1);
  EXPECT_FALSE(prober.Probe(domain, Vantage::kHamburg, 0).success);
}

TEST(Prober, WfcDomainShowsCoalescedAckSh) {
  Domain domain;
  domain.rank = 10;
  domain.speaks_quic = true;
  domain.cdn = Cdn::kFastly;  // 0 % IACK
  domain.iack_enabled = false;
  Prober prober(1);
  const ProbeResult result = prober.Probe(domain, Vantage::kHamburg, 0);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.iack_observed);
  EXPECT_TRUE(result.coalesced);
}

TEST(Prober, IackDomainObservedAsIackWhenUncached) {
  Domain domain;
  domain.rank = 10;
  domain.speaks_quic = true;
  domain.cdn = Cdn::kCloudflare;
  domain.iack_enabled = true;
  domain.cache_probability = 0.0;
  Prober prober(1);
  const ProbeResult result = prober.Probe(domain, Vantage::kSaoPaulo, 0);
  EXPECT_TRUE(result.iack_observed);
  EXPECT_GT(result.ack_sh_delay_ms, 0.0);
}

TEST(Prober, DeterministicPerDomainVantageDay) {
  Domain domain;
  domain.rank = 42;
  domain.speaks_quic = true;
  domain.cdn = Cdn::kAmazon;
  domain.iack_enabled = true;
  domain.cache_probability = 0.3;
  Prober prober(9);
  const ProbeResult a = prober.Probe(domain, Vantage::kHongKong, 2);
  const ProbeResult b = prober.Probe(domain, Vantage::kHongKong, 2);
  EXPECT_EQ(a.iack_observed, b.iack_observed);
  EXPECT_DOUBLE_EQ(a.rtt_ms, b.rtt_ms);
  EXPECT_DOUBLE_EQ(a.ack_sh_delay_ms, b.ack_sh_delay_ms);
}

TEST(Prober, GoogleMostlyReachableFromSaoPaulo) {
  // Appendix G: Google IACK frontends are near only from São Paulo.
  EXPECT_LT(MedianRttMs(Vantage::kSaoPaulo, Cdn::kGoogle),
            MedianRttMs(Vantage::kHamburg, Cdn::kGoogle));
}

TEST(Prober, ObservedIackStateVariesForAmazon) {
  // Table 1: Amazon's deployment varies up to 18 % across measurements.
  Domain domain;
  domain.rank = 77;
  domain.speaks_quic = true;
  domain.cdn = Cdn::kAmazon;
  domain.iack_enabled = true;
  int flips = 0;
  const int n = 2000;
  for (int day = 0; day < n; ++day) {
    if (!ObservedIackState(domain, static_cast<std::uint64_t>(day), 0, 1)) ++flips;
  }
  EXPECT_GT(flips, n / 50);
  EXPECT_LT(flips, n / 4);
}

TEST(Prober, CloudflareStateAlmostNeverFlips) {
  Domain domain;
  domain.rank = 5;
  domain.speaks_quic = true;
  domain.cdn = Cdn::kCloudflare;
  domain.iack_enabled = true;
  int flips = 0;
  for (int day = 0; day < 2000; ++day) {
    if (!ObservedIackState(domain, static_cast<std::uint64_t>(day), 0, 1)) ++flips;
  }
  EXPECT_LT(flips, 10);
}

}  // namespace
}  // namespace quicer::scan
