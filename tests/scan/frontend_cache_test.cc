#include "scan/frontend_cache.h"

#include <gtest/gtest.h>

namespace quicer::scan {
namespace {

FrontendCertCache::Config SingleMachine(std::size_t capacity = 8,
                                        sim::Duration ttl = sim::Seconds(60)) {
  FrontendCertCache::Config config;
  config.capacity = capacity;
  config.ttl = ttl;
  config.frontends_per_cluster = 1;
  return config;
}

TEST(FrontendCache, FirstConnectionMisses) {
  FrontendCertCache cache(SingleMachine(), sim::Rng(1));
  EXPECT_FALSE(cache.OnConnection("example.com", 0));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(FrontendCache, SecondConnectionHits) {
  FrontendCertCache cache(SingleMachine(), sim::Rng(1));
  cache.OnConnection("example.com", 0);
  EXPECT_TRUE(cache.OnConnection("example.com", sim::Seconds(1)));
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(FrontendCache, TtlExpiresEntries) {
  FrontendCertCache cache(SingleMachine(8, sim::Seconds(10)), sim::Rng(1));
  cache.OnConnection("example.com", 0);
  EXPECT_FALSE(cache.OnConnection("example.com", sim::Seconds(11)));
}

TEST(FrontendCache, TouchRefreshesTtl) {
  FrontendCertCache cache(SingleMachine(8, sim::Seconds(10)), sim::Rng(1));
  cache.OnConnection("example.com", 0);
  EXPECT_TRUE(cache.OnConnection("example.com", sim::Seconds(8)));
  EXPECT_TRUE(cache.OnConnection("example.com", sim::Seconds(16)));
}

TEST(FrontendCache, LruEvictsColdestWhenFull) {
  FrontendCertCache cache(SingleMachine(2), sim::Rng(1));
  cache.OnConnection("a.com", 0);
  cache.OnConnection("b.com", sim::Seconds(1));
  cache.OnConnection("a.com", sim::Seconds(2));  // touch a
  cache.OnConnection("c.com", sim::Seconds(3));  // evicts b
  EXPECT_TRUE(cache.OnConnection("a.com", sim::Seconds(4)));
  EXPECT_FALSE(cache.OnConnection("b.com", sim::Seconds(5)));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FrontendCache, ClusterDilutionReproducesSevenPercentCoalesced) {
  // The paper's own domains, probed at 60 connections/minute, saw only
  // 7.5 % coalesced responses: a Cloudflare colo has many machines and each
  // caches independently — the probe stream barely warms any one of them.
  FrontendCertCache::Config config;
  config.capacity = 8192;
  config.ttl = sim::Seconds(300);
  config.frontends_per_cluster = 4096;
  FrontendCertCache diluted(config, sim::Rng(5));
  config.frontends_per_cluster = 1;
  FrontendCertCache single(config, sim::Rng(5));
  for (int i = 0; i < 6000; ++i) {
    const sim::Time now = sim::Seconds(i);  // 60/minute
    diluted.OnConnection("mine.example", now);
    single.OnConnection("mine.example", now);
  }
  EXPECT_GT(single.HitRate(), 0.99);
  // ~300 probes per TTL window over 4096 machines -> ~7 %.
  EXPECT_GT(diluted.HitRate(), 0.03);
  EXPECT_LT(diluted.HitRate(), 0.15);
}

TEST(FrontendCache, PopularDomainStaysHotterThanColdOne) {
  FrontendCertCache::Config config;
  config.capacity = 512;
  config.ttl = sim::Seconds(120);
  config.frontends_per_cluster = 8;
  FrontendCertCache cache(config, sim::Rng(9));
  int popular_hits = 0;
  int popular_total = 0;
  int cold_hits = 0;
  int cold_total = 0;
  for (int minute = 0; minute < 600; ++minute) {
    const sim::Time now = sim::Seconds(minute * 60);
    // Popular domain: 40 connections a minute keep every machine hot.
    for (int c = 0; c < 40; ++c) {
      ++popular_total;
      if (cache.OnConnection("discord.example", now + c * 1500)) ++popular_hits;
    }
    // Cold domain: one probe every two minutes.
    if (minute % 2 == 0) {
      ++cold_total;
      if (cache.OnConnection("tinyurl.example", now)) ++cold_hits;
    }
  }
  const double popular_rate = static_cast<double>(popular_hits) / popular_total;
  const double cold_rate = static_cast<double>(cold_hits) / cold_total;
  // Fig 9's observation: discord.com 91.9 % coalesced, tinyurl.com 17.7 %.
  EXPECT_GT(popular_rate, 0.8);
  EXPECT_LT(cold_rate, 0.4);
  EXPECT_GT(popular_rate, cold_rate + 0.2);
}

}  // namespace
}  // namespace quicer::scan
