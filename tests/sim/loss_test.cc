#include "sim/loss.h"

#include <gtest/gtest.h>

namespace quicer::sim {
namespace {

TEST(LossPattern, DefaultDropsNothing) {
  LossPattern pattern;
  Rng rng(1);
  EXPECT_TRUE(pattern.empty());
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_FALSE(pattern.ShouldDrop(Direction::kClientToServer, i, rng));
    EXPECT_FALSE(pattern.ShouldDrop(Direction::kServerToClient, i, rng));
  }
}

TEST(LossPattern, DropsConfiguredIndicesOnly) {
  LossPattern pattern;
  pattern.DropIndices(Direction::kServerToClient, {2, 3});
  Rng rng(1);
  EXPECT_FALSE(pattern.ShouldDrop(Direction::kServerToClient, 1, rng));
  EXPECT_TRUE(pattern.ShouldDrop(Direction::kServerToClient, 2, rng));
  EXPECT_TRUE(pattern.ShouldDrop(Direction::kServerToClient, 3, rng));
  EXPECT_FALSE(pattern.ShouldDrop(Direction::kServerToClient, 4, rng));
}

TEST(LossPattern, DirectionsAreIndependent) {
  LossPattern pattern;
  pattern.DropIndices(Direction::kClientToServer, {2});
  Rng rng(1);
  EXPECT_TRUE(pattern.ShouldDrop(Direction::kClientToServer, 2, rng));
  EXPECT_FALSE(pattern.ShouldDrop(Direction::kServerToClient, 2, rng));
}

TEST(LossPattern, DropIndexRangeFromContainer) {
  LossPattern pattern;
  std::vector<int> indices{4, 5, 6};
  pattern.DropIndexRange(Direction::kClientToServer, indices);
  Rng rng(1);
  for (int i : indices) {
    EXPECT_TRUE(pattern.ShouldDrop(Direction::kClientToServer, static_cast<std::uint64_t>(i), rng));
  }
  EXPECT_EQ(pattern.IndexedDropCount(Direction::kClientToServer), 3u);
  EXPECT_EQ(pattern.IndexedDropCount(Direction::kServerToClient), 0u);
}

TEST(LossPattern, RandomRateDropsApproximatelyThatShare) {
  LossPattern pattern;
  pattern.DropRandom(Direction::kClientToServer, 0.25);
  Rng rng(99);
  int drops = 0;
  const int n = 100000;
  for (int i = 1; i <= n; ++i) {
    if (pattern.ShouldDrop(Direction::kClientToServer, static_cast<std::uint64_t>(i), rng)) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.01);
}

TEST(LossPattern, RandomRateZeroNeverDrops) {
  LossPattern pattern;
  pattern.DropRandom(Direction::kClientToServer, 0.0);
  EXPECT_TRUE(pattern.empty());
}

TEST(LossPattern, IndexedAndRandomCombine) {
  LossPattern pattern;
  pattern.DropIndices(Direction::kClientToServer, {1});
  pattern.DropRandom(Direction::kClientToServer, 0.0);
  Rng rng(1);
  EXPECT_TRUE(pattern.ShouldDrop(Direction::kClientToServer, 1, rng));
  EXPECT_FALSE(pattern.ShouldDrop(Direction::kClientToServer, 2, rng));
}

}  // namespace
}  // namespace quicer::sim
