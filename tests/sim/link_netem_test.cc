// Link + netem models: stochastic loss, bounded bottleneck queue and
// asymmetric path overrides, plus the jitter-reordering contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netem/model.h"
#include "sim/link.h"

namespace quicer::sim {
namespace {

Link::Config FastConfig() {
  Link::Config config;
  config.one_way_delay = Millis(10);
  config.bandwidth_bps = 10e6;
  config.header_overhead_bytes = 0;
  return config;
}

netem::LossModel Gilbert(double p, double r) {
  netem::LossModel loss;
  loss.kind = netem::LossModel::Kind::kGilbertElliott;
  loss.p = p;
  loss.r = r;
  return loss;
}

netem::QueueModel Fifo(std::size_t depth_pkts) {
  netem::QueueModel queue;
  queue.kind = netem::QueueModel::Kind::kFifo;
  queue.depth_pkts = depth_pkts;
  return queue;
}

/// Sends `n` back-to-back datagrams and returns which were delivered.
std::vector<int> DeliveredUnder(const Link::Config& config, std::uint64_t seed, int n,
                                Direction direction = Direction::kClientToServer) {
  EventQueue queue;
  Link link(queue, config, Rng(seed));
  std::vector<int> delivered;
  for (int i = 1; i <= n; ++i) {
    link.Send(direction, 1250, [&delivered, i] { delivered.push_back(i); });
  }
  queue.RunUntilIdle();
  return delivered;
}

TEST(LinkNetem, DefaultModelMatchesLegacyPipeExactly) {
  // A default LinkModel must not disturb timing or the RNG stream: same
  // deliveries, same times, with and without jitter in play.
  Link::Config legacy = FastConfig();
  legacy.jitter = Millis(2);
  Link::Config modeled = legacy;
  modeled.model = netem::LinkModel{};  // explicit default

  std::vector<Time> times_legacy, times_modeled;
  for (auto* times : {&times_legacy, &times_modeled}) {
    EventQueue queue;
    Link link(queue, times == &times_legacy ? legacy : modeled, Rng(17));
    for (int i = 0; i < 5; ++i) {
      link.Send(Direction::kClientToServer, 1250, [&] { times->push_back(queue.now()); });
    }
    queue.RunUntilIdle();
  }
  EXPECT_EQ(times_legacy, times_modeled);
}

TEST(LinkNetem, GilbertDropsAreSeedDeterministic) {
  Link::Config config = FastConfig();
  config.model.loss[netem::kUp] = Gilbert(0.3, 0.3);

  const std::vector<int> first = DeliveredUnder(config, 42, 200);
  const std::vector<int> second = DeliveredUnder(config, 42, 200);
  EXPECT_EQ(first, second);
  EXPECT_LT(first.size(), 200u);  // the channel actually dropped something
  EXPECT_NE(first, DeliveredUnder(config, 43, 200));  // and the seed matters
}

TEST(LinkNetem, StochasticLossIsPerDirection) {
  Link::Config config = FastConfig();
  config.model.loss[netem::kUp] = Gilbert(1.0, 0.0);  // sticky-bad after 1st

  EventQueue queue;
  Link link(queue, config, Rng(7));
  int up = 0, down = 0;
  for (int i = 0; i < 20; ++i) {
    link.Send(Direction::kClientToServer, 100, [&] { ++up; });
    link.Send(Direction::kServerToClient, 100, [&] { ++down; });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(up, 1);     // only the first datagram beat the sticky bad state
  EXPECT_EQ(down, 20);  // the reverse direction is untouched
  EXPECT_EQ(link.stats(Direction::kClientToServer).dropped_stochastic, 19u);
  EXPECT_EQ(link.stats(Direction::kClientToServer).dropped_pattern, 0u);
  EXPECT_EQ(link.stats(Direction::kServerToClient).dropped_stochastic, 0u);
}

TEST(LinkNetem, StochasticLossAppliesAfterIndexPatterns) {
  // A pattern-dropped datagram never reaches the stochastic stage: the drop
  // lands in dropped_pattern and consumes no RNG draw, so the surviving
  // datagrams see exactly the draws a bare LossProcess on the same seed
  // would hand them.
  Link::Config config = FastConfig();
  config.model.loss[netem::kUp] = Gilbert(0.3, 0.3);

  EventQueue queue;
  Link link(queue, config, Rng(42));
  LossPattern pattern;
  pattern.DropIndices(Direction::kClientToServer, {1});
  link.set_loss_pattern(pattern);
  std::vector<int> delivered;
  for (int i = 1; i <= 200; ++i) {
    link.Send(Direction::kClientToServer, 1250, [&delivered, i] { delivered.push_back(i); });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(link.stats(Direction::kClientToServer).dropped_pattern, 1u);

  // Hand-driven reference: datagram 1 is pattern-dropped (no draw), every
  // later datagram takes one ShouldDrop decision off the same RNG stream.
  netem::LossProcess process(config.model.loss[netem::kUp]);
  Rng rng(42);
  std::vector<int> reference;
  for (int i = 2; i <= 200; ++i) {
    if (!process.ShouldDrop(rng)) reference.push_back(i);
  }
  EXPECT_EQ(delivered, reference);
}

TEST(LinkNetem, AsymmetricPathOverrides) {
  Link::Config config = FastConfig();
  // Down: 40 ms delay at 1 Mbit/s (10 ms serialization for 1250 B).
  config.model.path[netem::kDown].one_way_delay = Millis(40);
  config.model.path[netem::kDown].bandwidth_bps = 1e6;

  EventQueue queue;
  Link link(queue, config, Rng(1));
  Time up_at = -1, down_at = -1;
  link.Send(Direction::kClientToServer, 1250, [&] { up_at = queue.now(); });
  link.Send(Direction::kServerToClient, 1250, [&] { down_at = queue.now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(up_at, Millis(11));    // symmetric base: 1 ms serialization + 10 ms
  EXPECT_EQ(down_at, Millis(50));  // override: 10 ms serialization + 40 ms
}

TEST(LinkNetem, AsymmetricJitterOverrideOnlyAffectsItsDirection) {
  Link::Config config = FastConfig();
  config.model.path[netem::kDown].jitter = Millis(5);

  EventQueue queue;
  Link link(queue, config, Rng(9));
  Time up_at = -1, down_at = -1;
  link.Send(Direction::kClientToServer, 1250, [&] { up_at = queue.now(); });
  link.Send(Direction::kServerToClient, 1250, [&] { down_at = queue.now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(up_at, Millis(11));  // jitter-free direction stays exact
  EXPECT_GT(down_at, Millis(11));
  EXPECT_LE(down_at, Millis(16));
}

TEST(LinkNetem, BoundedQueueDropsAndCountsStats) {
  Link::Config config = FastConfig();
  config.model.queue[netem::kUp] = Fifo(/*depth_pkts=*/3);

  EventQueue queue;
  Link link(queue, config, Rng(1));
  std::vector<Time> deliveries;
  for (int i = 0; i < 6; ++i) {
    link.Send(Direction::kClientToServer, 1250, [&] { deliveries.push_back(queue.now()); });
  }
  queue.RunUntilIdle();
  // 3 admitted (departures 1, 2, 3 ms -> arrivals 11, 12, 13 ms), 3 tail-dropped.
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries, (std::vector<Time>{Millis(11), Millis(12), Millis(13)}));
  const Link::DirectionStats& stats = link.stats(Direction::kClientToServer);
  EXPECT_EQ(stats.dropped_queue, 3u);
  EXPECT_EQ(stats.datagrams_dropped, 3u);
  EXPECT_EQ(stats.max_queue_pkts, 3u);
  EXPECT_EQ(stats.max_queue_bytes, 3u * 1250u);
}

TEST(LinkNetem, UnboundedFifoMatchesLegacyTiming) {
  Link::Config fifo_config = FastConfig();
  fifo_config.model.queue[netem::kUp] = Fifo(/*depth_pkts=*/0);

  for (int i = 0; i < 2; ++i) {
    EventQueue queue;
    Link link(queue, i == 0 ? FastConfig() : fifo_config, Rng(1));
    std::vector<Time> deliveries;
    for (int j = 0; j < 3; ++j) {
      link.Send(Direction::kClientToServer, 1250,
                [&] { deliveries.push_back(queue.now()); });
    }
    queue.RunUntilIdle();
    EXPECT_EQ(deliveries, (std::vector<Time>{Millis(11), Millis(12), Millis(13)})) << i;
  }
}

// The jitter-reordering contract: jitter larger than the inter-datagram
// spacing reorders deliveries, and the realized order is a pure function of
// the link's RNG seed.
TEST(LinkNetem, JitterBeyondSpacingReordersDeterministically) {
  Link::Config config = FastConfig();
  config.jitter = Millis(10);  // spacing is 1 ms/datagram at 10 Mbit/s

  auto order_under = [&](std::uint64_t seed) {
    EventQueue queue;
    Link link(queue, config, Rng(seed));
    std::vector<int> order;
    for (int i = 1; i <= 12; ++i) {
      link.Send(Direction::kClientToServer, 1250, [&order, i] { order.push_back(i); });
    }
    queue.RunUntilIdle();
    return order;
  };

  std::vector<int> sorted_reference;
  bool reordered_for_some_seed = false;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    const std::vector<int> order = order_under(seed);
    ASSERT_EQ(order.size(), 12u) << seed;  // jitter delays, never drops
    EXPECT_EQ(order_under(seed), order) << seed;  // bit-repeatable per seed
    sorted_reference = order;
    std::sort(sorted_reference.begin(), sorted_reference.end());
    if (order != sorted_reference) reordered_for_some_seed = true;
  }
  EXPECT_TRUE(reordered_for_some_seed);
}

}  // namespace
}  // namespace quicer::sim
