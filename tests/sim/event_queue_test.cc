#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace quicer::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue queue;
  EXPECT_EQ(queue.now(), 0);
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RunsEventAtScheduledTime) {
  EventQueue queue;
  Time fired_at = -1;
  queue.Schedule(Millis(5), [&] { fired_at = queue.now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(5));
  EXPECT_EQ(queue.now(), Millis(5));
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(Millis(10), [&] { order.push_back(2); });
  queue.Schedule(Millis(5), [&] { order.push_back(1); });
  queue.Schedule(Millis(20), [&] { order.push_back(3); });
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsRunFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(Millis(7), [&order, i] { order.push_back(i); });
  }
  queue.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue queue;
  Time fired_at = -1;
  queue.Schedule(Millis(3), [&] {
    queue.Schedule(-Millis(100), [&] { fired_at = queue.now(); });
  });
  queue.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(3));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  auto handle = queue.Schedule(Millis(1), [&] { fired = true; });
  queue.Cancel(handle);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidHandleIsNoop) {
  EventQueue queue;
  queue.Cancel(EventQueue::Handle{});
  queue.Cancel(EventQueue::Handle{12345});
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RunUntilAdvancesClockToDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.Schedule(Millis(5), [&] { ++fired; });
  queue.Schedule(Millis(15), [&] { ++fired; });
  queue.RunUntil(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), Millis(10));
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) queue.Schedule(Millis(1), recurse);
  };
  queue.Schedule(Millis(1), recurse);
  queue.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(queue.now(), Millis(5));
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue queue;
  queue.Schedule(Millis(1), [] {});
  auto handle = queue.Schedule(Millis(2), [] {});
  EXPECT_EQ(queue.PendingCount(), 2u);
  queue.Cancel(handle);
  EXPECT_EQ(queue.PendingCount(), 1u);
}

TEST(EventQueue, CancelAfterExecutionIsNoop) {
  // Regression: cancelling a handle whose event already ran used to insert
  // its id into the cancelled set permanently (never popped from the heap),
  // growing it unboundedly and making PendingCount() under-report.
  EventQueue queue;
  int fired = 0;
  const EventQueue::Handle handle = queue.Schedule(Millis(1), [&] { ++fired; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.PendingCount(), 0u);

  queue.Cancel(handle);  // already executed: must not poison later counts
  queue.Cancel(handle);  // and must stay idempotent
  EXPECT_EQ(queue.PendingCount(), 0u);

  queue.Schedule(Millis(1), [&] { ++fired; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RepeatedStaleCancelsDoNotAccumulate) {
  // Rearmed-timer pattern over a long run: every SetDeadline cancels the
  // previous (already-executed or pending) handle. PendingCount must track
  // the live events exactly throughout.
  EventQueue queue;
  std::vector<EventQueue::Handle> handles;
  for (int round = 0; round < 1000; ++round) {
    handles.push_back(queue.Schedule(Millis(1), [] {}));
    queue.RunUntilIdle();
    queue.Cancel(handles.back());  // stale: event already ran
    EXPECT_EQ(queue.PendingCount(), 0u);
  }
  // A final cancel of every stale handle still leaves the queue usable.
  for (const EventQueue::Handle& handle : handles) queue.Cancel(handle);
  bool ran = false;
  queue.Schedule(Millis(1), [&] { ran = true; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingCountTracksCancelledBeforeExecution) {
  EventQueue queue;
  const EventQueue::Handle a = queue.Schedule(Millis(1), [] {});
  const EventQueue::Handle b = queue.Schedule(Millis(2), [] {});
  EXPECT_EQ(queue.PendingCount(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.Cancel(a);  // double-cancel of a pending event
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(queue.PendingCount(), 0u);
  (void)b;
}

TEST(Timer, FiresAtDeadline) {
  EventQueue queue;
  int fired = 0;
  Timer timer(queue, [&] { ++fired; });
  timer.SetDeadline(Millis(10));
  EXPECT_TRUE(timer.armed());
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmCancelsPreviousDeadline) {
  EventQueue queue;
  std::vector<Time> fire_times;
  Timer timer(queue, [&] { fire_times.push_back(queue.now()); });
  timer.SetDeadline(Millis(10));
  timer.SetDeadline(Millis(20));
  queue.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Millis(20));
}

TEST(Timer, CancelDisarms) {
  EventQueue queue;
  bool fired = false;
  Timer timer(queue, [&] { fired = true; });
  timer.SetDeadline(Millis(10));
  timer.Cancel();
  EXPECT_FALSE(timer.armed());
  EXPECT_EQ(timer.deadline(), kNever);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Timer, SetNeverDisarms) {
  EventQueue queue;
  bool fired = false;
  Timer timer(queue, [&] { fired = true; });
  timer.SetDeadline(Millis(5));
  timer.SetDeadline(kNever);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Timer, CanRearmFromCallback) {
  EventQueue queue;
  int fires = 0;
  Timer* timer_ptr = nullptr;
  Timer timer(queue, [&] {
    if (++fires < 3) timer_ptr->SetDeadline(queue.now() + Millis(5));
  });
  timer_ptr = &timer;
  timer.SetDeadline(Millis(5));
  queue.RunUntilIdle();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(queue.now(), Millis(15));
}

}  // namespace
}  // namespace quicer::sim
