#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace quicer::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue queue;
  EXPECT_EQ(queue.now(), 0);
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RunsEventAtScheduledTime) {
  EventQueue queue;
  Time fired_at = -1;
  queue.Schedule(Millis(5), [&] { fired_at = queue.now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(5));
  EXPECT_EQ(queue.now(), Millis(5));
}

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(Millis(10), [&] { order.push_back(2); });
  queue.Schedule(Millis(5), [&] { order.push_back(1); });
  queue.Schedule(Millis(20), [&] { order.push_back(3); });
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsRunFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(Millis(7), [&order, i] { order.push_back(i); });
  }
  queue.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue queue;
  Time fired_at = -1;
  queue.Schedule(Millis(3), [&] {
    queue.Schedule(-Millis(100), [&] { fired_at = queue.now(); });
  });
  queue.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(3));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  auto handle = queue.Schedule(Millis(1), [&] { fired = true; });
  queue.Cancel(handle);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelInvalidHandleIsNoop) {
  EventQueue queue;
  queue.Cancel(EventQueue::Handle{});
  queue.Cancel(EventQueue::Handle{12345});
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RunUntilAdvancesClockToDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.Schedule(Millis(5), [&] { ++fired; });
  queue.Schedule(Millis(15), [&] { ++fired; });
  queue.RunUntil(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), Millis(10));
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) queue.Schedule(Millis(1), recurse);
  };
  queue.Schedule(Millis(1), recurse);
  queue.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(queue.now(), Millis(5));
}

TEST(EventQueue, PendingCountExcludesCancelled) {
  EventQueue queue;
  queue.Schedule(Millis(1), [] {});
  auto handle = queue.Schedule(Millis(2), [] {});
  EXPECT_EQ(queue.PendingCount(), 2u);
  queue.Cancel(handle);
  EXPECT_EQ(queue.PendingCount(), 1u);
}

TEST(EventQueue, CancelAfterExecutionIsNoop) {
  // Regression: cancelling a handle whose event already ran used to insert
  // its id into the cancelled set permanently (never popped from the heap),
  // growing it unboundedly and making PendingCount() under-report.
  EventQueue queue;
  int fired = 0;
  const EventQueue::Handle handle = queue.Schedule(Millis(1), [&] { ++fired; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.PendingCount(), 0u);

  queue.Cancel(handle);  // already executed: must not poison later counts
  queue.Cancel(handle);  // and must stay idempotent
  EXPECT_EQ(queue.PendingCount(), 0u);

  queue.Schedule(Millis(1), [&] { ++fired; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.PendingCount(), 0u);
}

TEST(EventQueue, RepeatedStaleCancelsDoNotAccumulate) {
  // Rearmed-timer pattern over a long run: every SetDeadline cancels the
  // previous (already-executed or pending) handle. PendingCount must track
  // the live events exactly throughout.
  EventQueue queue;
  std::vector<EventQueue::Handle> handles;
  for (int round = 0; round < 1000; ++round) {
    handles.push_back(queue.Schedule(Millis(1), [] {}));
    queue.RunUntilIdle();
    queue.Cancel(handles.back());  // stale: event already ran
    EXPECT_EQ(queue.PendingCount(), 0u);
  }
  // A final cancel of every stale handle still leaves the queue usable.
  for (const EventQueue::Handle& handle : handles) queue.Cancel(handle);
  bool ran = false;
  queue.Schedule(Millis(1), [&] { ran = true; });
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingCountTracksCancelledBeforeExecution) {
  EventQueue queue;
  const EventQueue::Handle a = queue.Schedule(Millis(1), [] {});
  const EventQueue::Handle b = queue.Schedule(Millis(2), [] {});
  EXPECT_EQ(queue.PendingCount(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.Cancel(a);  // double-cancel of a pending event
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(queue.PendingCount(), 0u);
  (void)b;
}

TEST(EventQueue, StaleHandleCannotCancelSlotReuser) {
  // The slot of an executed event is recycled for the next Schedule with a
  // bumped generation; a stale handle to the old occupant must not be able
  // to cancel the new one.
  EventQueue queue;
  int first = 0;
  const EventQueue::Handle old_handle = queue.Schedule(Millis(1), [&] { ++first; });
  queue.RunUntilIdle();
  EXPECT_EQ(first, 1);

  int second = 0;
  const EventQueue::Handle new_handle = queue.Schedule(Millis(1), [&] { ++second; });
  queue.Cancel(old_handle);  // generation mismatch: must be a no-op
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_EQ(second, 1);
  (void)new_handle;
}

TEST(EventQueue, CancelledSlotReusedWithFreshGeneration) {
  // Cancel → reschedule reuses the freed slot; the cancelled handle stays
  // dead and the replacement fires normally.
  EventQueue queue;
  bool cancelled_ran = false;
  const EventQueue::Handle cancelled = queue.Schedule(Millis(5), [&] { cancelled_ran = true; });
  queue.Cancel(cancelled);
  bool replacement_ran = false;
  queue.Schedule(Millis(5), [&] { replacement_ran = true; });
  queue.Cancel(cancelled);  // stale again, still a no-op
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(replacement_ran);
}

TEST(EventQueue, FifoOrderSurvivesInterleavedCancellation) {
  // Lazy cancellation leaves dead entries in the heap; the survivors must
  // still run in insertion order among equal timestamps.
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(queue.Schedule(Millis(3), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 2) queue.Cancel(handles[static_cast<std::size_t>(i)]);
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 11}));
}

TEST(Timer, FiresAtDeadline) {
  EventQueue queue;
  int fired = 0;
  Timer timer(queue, [&] { ++fired; });
  timer.SetDeadline(Millis(10));
  EXPECT_TRUE(timer.armed());
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmCancelsPreviousDeadline) {
  EventQueue queue;
  std::vector<Time> fire_times;
  Timer timer(queue, [&] { fire_times.push_back(queue.now()); });
  timer.SetDeadline(Millis(10));
  timer.SetDeadline(Millis(20));
  queue.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Millis(20));
}

TEST(Timer, CancelDisarms) {
  EventQueue queue;
  bool fired = false;
  Timer timer(queue, [&] { fired = true; });
  timer.SetDeadline(Millis(10));
  timer.Cancel();
  EXPECT_FALSE(timer.armed());
  EXPECT_EQ(timer.deadline(), kNever);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Timer, SetNeverDisarms) {
  EventQueue queue;
  bool fired = false;
  Timer timer(queue, [&] { fired = true; });
  timer.SetDeadline(Millis(5));
  timer.SetDeadline(kNever);
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Timer, CanRearmFromCallback) {
  EventQueue queue;
  int fires = 0;
  Timer* timer_ptr = nullptr;
  Timer timer(queue, [&] {
    if (++fires < 3) timer_ptr->SetDeadline(queue.now() + Millis(5));
  });
  timer_ptr = &timer;
  timer.SetDeadline(Millis(5));
  queue.RunUntilIdle();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(queue.now(), Millis(15));
}

TEST(Timer, LazyPushKeepsEventButFiresAtNewDeadline) {
  // SetDeadlineLazy with a later deadline leaves the earlier event in the
  // queue; on the early wake-up the timer silently re-arms instead of
  // firing, and the callback runs exactly once at the pushed deadline.
  EventQueue queue;
  std::vector<Time> fire_times;
  Timer timer(queue, [&] { fire_times.push_back(queue.now()); });
  timer.SetDeadline(Millis(10));
  timer.SetDeadlineLazy(Millis(25));
  EXPECT_EQ(timer.deadline(), Millis(25));
  EXPECT_EQ(queue.PendingCount(), 1u);  // the Millis(10) event is kept
  queue.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Millis(25));
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, LazyPullForwardReschedules) {
  // An earlier deadline cannot be deferred: lazy falls back to a real
  // reschedule so the timer does not fire late.
  EventQueue queue;
  std::vector<Time> fire_times;
  Timer timer(queue, [&] { fire_times.push_back(queue.now()); });
  timer.SetDeadline(Millis(20));
  timer.SetDeadlineLazy(Millis(5));
  queue.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Millis(5));
}

TEST(Timer, LazyOnUnarmedTimerArms) {
  EventQueue queue;
  int fired = 0;
  Timer timer(queue, [&] { ++fired; });
  timer.SetDeadlineLazy(Millis(7));
  EXPECT_TRUE(timer.armed());
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), Millis(7));
}

TEST(Timer, LazyNeverCancels) {
  EventQueue queue;
  bool fired = false;
  Timer timer(queue, [&] { fired = true; });
  timer.SetDeadline(Millis(10));
  timer.SetDeadlineLazy(kNever);
  EXPECT_FALSE(timer.armed());
  queue.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(Timer, RepeatedLazyPushesCoalesceIntoOneFire) {
  // The idle-timer pattern: every datagram pushes the deadline further out.
  // Only the final deadline fires, and only one underlying event chain runs.
  EventQueue queue;
  std::vector<Time> fire_times;
  Timer timer(queue, [&] { fire_times.push_back(queue.now()); });
  timer.SetDeadline(Millis(10));
  for (int i = 2; i <= 10; ++i) timer.SetDeadlineLazy(Millis(10) * i);
  EXPECT_EQ(queue.PendingCount(), 1u);
  queue.RunUntilIdle();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], Millis(100));
}

}  // namespace
}  // namespace quicer::sim
