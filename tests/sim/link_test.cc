#include "sim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace quicer::sim {
namespace {

Link::Config FastConfig() {
  Link::Config config;
  config.one_way_delay = Millis(10);
  config.bandwidth_bps = 10e6;
  config.header_overhead_bytes = 0;
  return config;
}

TEST(Link, DeliversAfterOneWayDelayPlusSerialisation) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  Time delivered_at = -1;
  // 1250 bytes at 10 Mbit/s = 1 ms serialisation.
  link.Send(Direction::kClientToServer, 1250, [&] { delivered_at = queue.now(); });
  queue.RunUntilIdle();
  EXPECT_EQ(delivered_at, Millis(11));
}

TEST(Link, BackToBackDatagramsQueueAtBottleneck) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  std::vector<Time> deliveries;
  for (int i = 0; i < 3; ++i) {
    link.Send(Direction::kClientToServer, 1250, [&] { deliveries.push_back(queue.now()); });
  }
  queue.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], Millis(11));
  EXPECT_EQ(deliveries[1], Millis(12));
  EXPECT_EQ(deliveries[2], Millis(13));
}

TEST(Link, DirectionsDoNotShareTheBottleneck) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  std::vector<Time> deliveries;
  link.Send(Direction::kClientToServer, 1250, [&] { deliveries.push_back(queue.now()); });
  link.Send(Direction::kServerToClient, 1250, [&] { deliveries.push_back(queue.now()); });
  queue.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], Millis(11));
  EXPECT_EQ(deliveries[1], Millis(11));
}

TEST(Link, AssignsMonotonicPerDirectionIndices) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  EXPECT_EQ(link.Send(Direction::kClientToServer, 100, [] {}), 1u);
  EXPECT_EQ(link.Send(Direction::kClientToServer, 100, [] {}), 2u);
  EXPECT_EQ(link.Send(Direction::kServerToClient, 100, [] {}), 1u);
  EXPECT_EQ(link.Send(Direction::kClientToServer, 100, [] {}), 3u);
}

TEST(Link, IndexedLossDropsExactDatagram) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  LossPattern pattern;
  pattern.DropIndices(Direction::kClientToServer, {2});
  link.set_loss_pattern(pattern);
  std::vector<int> delivered;
  for (int i = 1; i <= 3; ++i) {
    link.Send(Direction::kClientToServer, 100, [&delivered, i] { delivered.push_back(i); });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(delivered, (std::vector<int>{1, 3}));
  EXPECT_EQ(link.stats(Direction::kClientToServer).datagrams_dropped, 1u);
  EXPECT_EQ(link.stats(Direction::kClientToServer).datagrams_delivered, 2u);
}

TEST(Link, DroppedDatagramStillConsumesIndex) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  LossPattern pattern;
  pattern.DropIndices(Direction::kServerToClient, {1});
  link.set_loss_pattern(pattern);
  EXPECT_EQ(link.Send(Direction::kServerToClient, 100, [] {}), 1u);
  EXPECT_EQ(link.Send(Direction::kServerToClient, 100, [] {}), 2u);
}

TEST(Link, RttIsTwiceOneWayDelay) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  EXPECT_EQ(link.rtt(), Millis(20));
}

TEST(Link, StatsCountBytes) {
  EventQueue queue;
  Link link(queue, FastConfig(), Rng(1));
  link.Send(Direction::kClientToServer, 700, [] {});
  link.Send(Direction::kClientToServer, 300, [] {});
  queue.RunUntilIdle();
  EXPECT_EQ(link.stats(Direction::kClientToServer).bytes_sent, 1000u);
  EXPECT_EQ(link.stats(Direction::kClientToServer).datagrams_sent, 2u);
}

TEST(Link, SerialisationScalesWithBandwidth) {
  EventQueue queue;
  Link::Config config = FastConfig();
  config.bandwidth_bps = 1e6;  // 1 Mbit/s
  Link link(queue, config, Rng(1));
  Time delivered_at = -1;
  link.Send(Direction::kClientToServer, 1250, [&] { delivered_at = queue.now(); });  // 10 ms
  queue.RunUntilIdle();
  EXPECT_EQ(delivered_at, Millis(20));
}

}  // namespace
}  // namespace quicer::sim
