// Steady-state allocation regression test for the event loop.
//
// The slot-based EventQueue promises that once its slot table and heap have
// grown to a run's working set, scheduling and running events performs no
// heap allocation at all: slots are recycled through a free list, heap
// entries live in a reused vector, and callbacks small enough for the
// SmallFn buffer are stored inline. This binary replaces global operator
// new/delete with counting versions to pin that property down — a
// regression (e.g. a capture outgrowing the SmallFn buffer, or a container
// that shrinks between events) shows up as a nonzero steady-state count.
//
// This file must stay its own test binary: the global replacement operators
// affect every allocation in the process.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

namespace {

std::size_t g_alloc_count = 0;
bool g_counting = false;

struct AllocationScope {
  AllocationScope() {
    g_alloc_count = 0;
    g_counting = true;
  }
  ~AllocationScope() { g_counting = false; }
  std::size_t count() const { return g_alloc_count; }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_alloc_count;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace quicer::sim {
namespace {

TEST(EventQueueAlloc, SteadyStateScheduleRunIsAllocationFree) {
  EventQueue queue;

  // Warm-up: grow the slot table and heap to the working set. Twenty
  // concurrent events is far above what the measurement loop keeps live.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      queue.Schedule(Millis(i + 1), [i] { (void)i; });
    }
    queue.RunUntilIdle();
  }

  AllocationScope scope;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) {
      queue.Schedule(Millis(i + 1), [i] { (void)i; });
    }
    queue.RunUntilIdle();
  }
  EXPECT_EQ(scope.count(), 0u);
}

TEST(EventQueueAlloc, SteadyStateCancelIsAllocationFree) {
  EventQueue queue;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      queue.Schedule(Millis(i + 1), [] {});
    }
    queue.RunUntilIdle();
  }

  AllocationScope scope;
  for (int round = 0; round < 1000; ++round) {
    EventQueue::Handle keep = queue.Schedule(Millis(1), [] {});
    EventQueue::Handle drop = queue.Schedule(Millis(2), [] {});
    queue.Cancel(drop);
    queue.RunUntilIdle();
    (void)keep;
  }
  EXPECT_EQ(scope.count(), 0u);
}

TEST(EventQueueAlloc, TimerRearmIsAllocationFree) {
  // The timer re-arm pattern (loss detection, ack delay, lazy idle pushes)
  // schedules one event per arm; all of them must recycle storage.
  EventQueue queue;
  int fires = 0;
  Timer timer(queue, [&] { ++fires; });

  for (int round = 0; round < 3; ++round) {
    timer.SetDeadline(queue.now() + Millis(1));
    queue.RunUntilIdle();
  }

  AllocationScope scope;
  for (int round = 0; round < 1000; ++round) {
    timer.SetDeadline(queue.now() + Millis(1));
    timer.SetDeadlineLazy(queue.now() + Millis(3));
    queue.RunUntilIdle();
  }
  EXPECT_EQ(scope.count(), 0u);
  EXPECT_EQ(fires, 3 + 1000);
}

}  // namespace
}  // namespace quicer::sim
