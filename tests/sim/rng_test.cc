#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace quicer::sim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LogNormalMedianIsExpMu) {
  Rng rng(19);
  const int n = 100001;
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) values.push_back(rng.LogNormal(std::log(5.0), 0.5));
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], 5.0, 0.15);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkIsDeterministicAndIndependentOfDraws) {
  Rng a(31);
  Rng b(31);
  // Consume some values from a only; forks must still match.
  for (int i = 0; i < 10; ++i) a.Next();
  Rng fork_a = a.Fork(5);
  Rng fork_b = b.Fork(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork_a.Next(), fork_b.Next());
}

TEST(Rng, ForksWithDifferentLabelsDiverge) {
  Rng rng(37);
  Rng f1 = rng.Fork(1);
  Rng f2 = rng.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.Next() == f2.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace quicer::sim
