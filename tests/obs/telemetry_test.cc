// The telemetry registry contract: counting is a no-op until the process
// enables telemetry, per-thread counts fold across threads (sum vs
// high-water max), registries survive thread exit, and the report document
// round-trips through the JSON parser.
//
// EnableProcess is sticky, so every test here runs with telemetry on after
// the first — the disabled-path check therefore runs first and the file
// never asserts "disabled" later.
#include <gtest/gtest.h>

#include <thread>

#include "core/json.h"
#include "obs/telemetry.h"

namespace quicer::obs {
namespace {

TEST(Telemetry, DisabledCountingIsANoOpAndCheapToCall) {
  ASSERT_FALSE(ProcessEnabled());
  EXPECT_FALSE(Enabled());
  // Counting without a registry must be safe (and is the default state of
  // every thread in every bench run without --telemetry).
  Count(kEventsRun, 100);
  CountMax(kPoolFrameHighWater, 7);
  EnsureThisThread();  // no-op while the process is disabled
  EXPECT_FALSE(Enabled());
}

TEST(Telemetry, CountsFoldAcrossThreadsBySumAndMax) {
  EnableProcess();
  ASSERT_TRUE(ProcessEnabled());
  EXPECT_TRUE(Enabled());
  ResetAll();

  Count(kEventsRun, 10);
  CountMax(kPoolFrameHighWater, 5);
  std::thread worker([] {
    EnsureThisThread();
    Count(kEventsRun, 32);
    CountMax(kPoolFrameHighWater, 9);
  });
  worker.join();

  // The worker thread has exited; its registry must still be visible.
  const auto snapshot = Snapshot();
  EXPECT_EQ(snapshot[kEventsRun], 42u);
  EXPECT_EQ(snapshot[kPoolFrameHighWater], 9u);

  ResetAll();
  const auto zeroed = Snapshot();
  EXPECT_EQ(zeroed[kEventsRun], 0u);
  EXPECT_EQ(zeroed[kPoolFrameHighWater], 0u);
}

TEST(Telemetry, DescriptorsNameEveryCounterDistinctly) {
  const auto& descriptors = Descriptors();
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    ASSERT_NE(descriptors[i].name, nullptr);
    EXPECT_GT(std::string_view(descriptors[i].name).size(), 0u);
    for (std::size_t j = i + 1; j < descriptors.size(); ++j) {
      EXPECT_STRNE(descriptors[i].name, descriptors[j].name);
    }
  }
  EXPECT_EQ(std::string_view(Describe(kEventsRun).name), "sim.events_run");
  EXPECT_EQ(Describe(kEventsRun).merge, MergeMode::kSum);
  EXPECT_EQ(Describe(kPoolPacketHighWater).merge, MergeMode::kMax);
  EXPECT_EQ(Describe(kNetemMaxQueueBytesDown).merge, MergeMode::kMax);

  // Directional pairs sit at adjacent values (call sites offset by
  // direction, 0 = up).
  EXPECT_EQ(kNetemEnqueuedUp + 1, static_cast<std::size_t>(kNetemEnqueuedDown));
  EXPECT_EQ(kNetemDropPatternUp + 1, static_cast<std::size_t>(kNetemDropPatternDown));
}

TEST(Telemetry, MergeModeForNameFallsBackToSumForUnknownNames) {
  EXPECT_EQ(MergeModeForName("sim.events_run"), MergeMode::kSum);
  EXPECT_EQ(MergeModeForName(Describe(kNetemMaxQueuePktsUp).name), MergeMode::kMax);
  EXPECT_EQ(MergeModeForName("future.counter_from_a_newer_binary"), MergeMode::kSum);
}

TEST(Telemetry, SweepRecordsDrainIntoAParseableReport) {
  SetCurrentBench("fig06");
  EXPECT_EQ(CurrentBench(), "fig06");
  SweepRecord record;
  record.bench = CurrentBench();
  record.sweep = "loss_sweep";
  record.wall_seconds = 1.5;
  record.executed_runs = 300;
  record.counters = {{"sim.events_run", 4500u}, {"quic.pool.frame_highwater", 12u}};
  AppendSweepRecord(record);
  SetCurrentBench("");

  EXPECT_EQ(RecordCounter(record, "sim.events_run"), 4500u);
  EXPECT_EQ(RecordCounter(record, "absent"), 0u);

  const std::vector<SweepRecord> drained = TakeSweepRecords();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(TakeSweepRecords().empty());  // drained means drained

  const std::string json = TelemetryReportJson(drained);
  std::string error;
  const std::optional<core::JsonValue> doc = core::JsonValue::Parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error << "\n" << json;
  EXPECT_EQ(doc->GetString("format"), "quicer-telemetry-v1");
  const core::JsonValue* sweeps = doc->Get("sweeps");
  ASSERT_NE(sweeps, nullptr);
  ASSERT_EQ(sweeps->Items().size(), 1u);
  const core::JsonValue& sweep = sweeps->Items()[0];
  EXPECT_EQ(sweep.GetString("bench"), "fig06");
  EXPECT_EQ(sweep.GetString("sweep"), "loss_sweep");
  EXPECT_DOUBLE_EQ(sweep.GetNumber("wall_seconds"), 1.5);
  EXPECT_EQ(static_cast<std::uint64_t>(sweep.GetNumber("executed_runs")), 300u);
  const core::JsonValue* counters = sweep.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(counters->GetNumber("sim.events_run")), 4500u);
}

}  // namespace
}  // namespace quicer::obs
