#include "recovery/congestion.h"

#include <gtest/gtest.h>

namespace quicer::recovery {
namespace {

TEST(NewReno, InitialWindowIsTenPackets) {
  NewRenoCongestion cc;
  EXPECT_EQ(cc.congestion_window(), 12000u);
  EXPECT_TRUE(cc.InSlowStart());
}

TEST(NewReno, SendConsumesWindow) {
  NewRenoCongestion cc;
  EXPECT_TRUE(cc.CanSend(12000));
  cc.OnPacketSent(12000);
  EXPECT_FALSE(cc.CanSend(1));
  EXPECT_EQ(cc.AvailableWindow(), 0u);
}

TEST(NewReno, SlowStartGrowsByAckedBytes) {
  NewRenoCongestion cc;
  cc.OnPacketSent(1200);
  cc.OnPacketAcked(1200, sim::Millis(1));
  EXPECT_EQ(cc.congestion_window(), 13200u);
  EXPECT_EQ(cc.bytes_in_flight(), 0u);
}

TEST(NewReno, LossHalvesWindowAndExitsSlowStart) {
  NewRenoCongestion cc;
  cc.OnPacketSent(12000);
  cc.OnPacketsLost(1200, sim::Millis(5), sim::Millis(10));
  EXPECT_EQ(cc.congestion_window(), 6000u);
  EXPECT_FALSE(cc.InSlowStart());
  EXPECT_EQ(cc.slow_start_threshold(), 6000u);
}

TEST(NewReno, OnlyOneReductionPerRecoveryPeriod) {
  NewRenoCongestion cc;
  cc.OnPacketSent(12000);
  cc.OnPacketsLost(1200, sim::Millis(5), sim::Millis(10));
  const std::size_t after_first = cc.congestion_window();
  // Second loss of a packet sent *before* recovery began: no new reduction.
  cc.OnPacketsLost(1200, sim::Millis(7), sim::Millis(12));
  EXPECT_EQ(cc.congestion_window(), after_first);
  // Loss of a packet sent after recovery start does reduce again.
  cc.OnPacketsLost(1200, sim::Millis(11), sim::Millis(20));
  EXPECT_LT(cc.congestion_window(), after_first);
}

TEST(NewReno, WindowNeverBelowMinimum) {
  NewRenoCongestion cc;
  for (int i = 0; i < 20; ++i) {
    cc.OnPacketSent(1200);
    cc.OnPacketsLost(1200, sim::Millis(100 + i * 10), sim::Millis(100 + i * 10));
  }
  EXPECT_GE(cc.congestion_window(), 2u * 1200u);
}

TEST(NewReno, CongestionAvoidanceGrowsSlower) {
  NewRenoCongestion cc;
  cc.OnPacketSent(2400);
  cc.OnPacketsLost(1200, sim::Millis(1), sim::Millis(2));  // exit slow start
  const std::size_t window = cc.congestion_window();
  cc.OnPacketSent(1200);
  cc.OnPacketAcked(1200, sim::Millis(10));  // after recovery_start
  const std::size_t growth = cc.congestion_window() - window;
  EXPECT_GT(growth, 0u);
  EXPECT_LT(growth, 1200u);  // sub-linear growth per ack
}

TEST(NewReno, AcksDuringRecoveryDoNotGrowWindow) {
  NewRenoCongestion cc;
  cc.OnPacketSent(2400);
  cc.OnPacketsLost(1200, sim::Millis(5), sim::Millis(10));
  const std::size_t window = cc.congestion_window();
  // Packet sent at t=4 (before recovery start at t=10).
  cc.OnPacketAcked(1200, sim::Millis(4));
  EXPECT_EQ(cc.congestion_window(), window);
}

TEST(NewReno, DiscardReleasesBytesWithoutGrowth) {
  NewRenoCongestion cc;
  cc.OnPacketSent(2400);
  const std::size_t window = cc.congestion_window();
  cc.OnPacketDiscarded(2400);
  EXPECT_EQ(cc.bytes_in_flight(), 0u);
  EXPECT_EQ(cc.congestion_window(), window);
}

}  // namespace
}  // namespace quicer::recovery
