#include "recovery/rtt_estimator.h"

#include <gtest/gtest.h>

namespace quicer::recovery {
namespace {

TEST(RttEstimator, NoSampleInitially) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  EXPECT_EQ(rtt.sample_count(), 0);
}

TEST(RttEstimator, FirstSampleInitialisesPerRfc9002) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(100), 0);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), sim::Millis(100));
  EXPECT_EQ(rtt.rttvar(), sim::Millis(50));
  EXPECT_EQ(rtt.min_rtt(), sim::Millis(100));
  EXPECT_EQ(rtt.latest(), sim::Millis(100));
}

TEST(RttEstimator, EwmaConvergesTowardsConstantSamples) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(100), 0);
  for (int i = 0; i < 100; ++i) rtt.AddSample(sim::Millis(40), 0);
  EXPECT_NEAR(static_cast<double>(rtt.smoothed()), static_cast<double>(sim::Millis(40)),
              static_cast<double>(sim::Millis(1)));
  EXPECT_LT(rtt.rttvar(), sim::Millis(2));
}

TEST(RttEstimator, MinRttTracksMinimum) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(50), 0);
  rtt.AddSample(sim::Millis(30), 0);
  rtt.AddSample(sim::Millis(70), 0);
  EXPECT_EQ(rtt.min_rtt(), sim::Millis(30));
}

TEST(RttEstimator, AckDelaySubtractedWhenAboveMinRtt) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(50), 0);  // min_rtt = 50
  // 80 - 20 = 60 >= min_rtt -> adjusted to 60.
  rtt.AddSample(sim::Millis(80), sim::Millis(20));
  // smoothed = 7/8*50 + 1/8*60 = 51.25
  EXPECT_EQ(rtt.smoothed(), sim::Millis(51.25));
}

TEST(RttEstimator, AckDelayIgnoredWhenItWouldUndershootMinRtt) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(50), 0);
  // 55 - 20 = 35 < min_rtt(50): use the raw sample.
  rtt.AddSample(sim::Millis(55), sim::Millis(20));
  // smoothed = 7/8*50 + 1/8*55 = 50.625
  EXPECT_EQ(rtt.smoothed(), sim::Millis(50.625));
}

TEST(RttEstimator, FirstPtoIsThreeTimesFirstSample) {
  // The paper's central identity: smoothed + 4*var = s + 4*(s/2) = 3s.
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(9), 0);
  EXPECT_EQ(rtt.smoothed() + 4 * rtt.rttvar(), 3 * sim::Millis(9));
}

TEST(RttEstimator, AioquicVarianceFormulaDiffersUnderAckDelay) {
  RttEstimator rfc(RttVarFormula::kRfc9002);
  RttEstimator aioquic(RttVarFormula::kAioquicLegacy);
  for (RttEstimator* rtt : {&rfc, &aioquic}) {
    rtt->AddSample(sim::Millis(50), 0);
    rtt->AddSample(sim::Millis(90), sim::Millis(30));
  }
  // Same smoothed (adjusted sample identical) but different rttvar: aioquic
  // uses the unadjusted sample for the deviation.
  EXPECT_EQ(rfc.smoothed(), aioquic.smoothed());
  EXPECT_NE(rfc.rttvar(), aioquic.rttvar());
  EXPECT_GT(aioquic.rttvar(), rfc.rttvar());
}

TEST(RttEstimator, OverrideFirstSampleSetsWrongState) {
  // go-x-net quirk: smoothed forced to 90 ms regardless of the real path.
  RttEstimator rtt;
  rtt.OverrideFirstSample(sim::Millis(90), sim::Millis(45));
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), sim::Millis(90));
  EXPECT_EQ(rtt.rttvar(), sim::Millis(45));
  // Subsequent correct samples slowly repair the estimate.
  for (int i = 0; i < 50; ++i) rtt.AddSample(sim::Millis(33), 0);
  EXPECT_LT(rtt.smoothed(), sim::Millis(40));
}

TEST(RttEstimator, SampleCountIncrements) {
  RttEstimator rtt;
  for (int i = 1; i <= 5; ++i) {
    rtt.AddSample(sim::Millis(10), 0);
    EXPECT_EQ(rtt.sample_count(), i);
  }
}

// Property sweep: first PTO identity holds across the paper's RTT range.
class FirstPtoSweep : public ::testing::TestWithParam<int> {};

TEST_P(FirstPtoSweep, FirstPtoEqualsThreeSamples) {
  const sim::Duration rtt_value = sim::Millis(static_cast<double>(GetParam()));
  RttEstimator rtt;
  rtt.AddSample(rtt_value, 0);
  EXPECT_EQ(rtt.smoothed() + 4 * rtt.rttvar(), 3 * rtt_value);
}

INSTANTIATE_TEST_SUITE_P(PaperRtts, FirstPtoSweep,
                         ::testing::Values(1, 9, 20, 25, 50, 100, 150, 200, 300));

}  // namespace
}  // namespace quicer::recovery
