#include "recovery/sent_packets.h"

#include <gtest/gtest.h>

namespace quicer::recovery {
namespace {

SentPacket MakePacket(std::uint64_t pn, sim::Time sent, bool ack_eliciting = true,
                      std::size_t bytes = 1200) {
  SentPacket packet;
  packet.packet_number = pn;
  packet.sent_time = sent;
  packet.bytes = bytes;
  packet.ack_eliciting = ack_eliciting;
  packet.in_flight = ack_eliciting;
  return packet;
}

quic::AckFrame AckOf(std::initializer_list<std::uint64_t> pns, sim::Duration delay = 0) {
  quic::AckFrame ack;
  ack.ack_delay = delay;
  for (std::uint64_t pn : pns) {
    ack.ranges.push_back(quic::PnRange{pn, pn});
    ack.largest_acked = std::max(ack.largest_acked, pn);
  }
  return ack;
}

TEST(SentPacketLedger, AckRemovesPacketsAndReportsBytes) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  ledger.OnPacketSent(MakePacket(1, 10));
  EXPECT_EQ(ledger.bytes_in_flight(), 2400u);

  const AckResult result = ledger.OnAckReceived(AckOf({0, 1}), sim::Millis(50));
  EXPECT_EQ(result.newly_acked.size(), 2u);
  EXPECT_EQ(result.newly_acked_bytes, 2400u);
  EXPECT_EQ(ledger.bytes_in_flight(), 0u);
  EXPECT_EQ(ledger.unacked_count(), 0u);
}

TEST(SentPacketLedger, RttSampleOnlyWhenLargestNewlyAckedIsAckEliciting) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0, /*ack_eliciting=*/true));
  const AckResult result = ledger.OnAckReceived(AckOf({0}), sim::Millis(30));
  EXPECT_TRUE(result.rtt_sample_available);
  EXPECT_EQ(result.latest_rtt, sim::Millis(30));
}

TEST(SentPacketLedger, NoRttSampleWhenLargestAckedUnknown) {
  // The instant-ACK asymmetry: a pure-ACK packet is not tracked, so an ACK
  // of it gives no sample.
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  // Peer acks pn 5 (a pure-ACK packet we never registered) plus pn 0.
  quic::AckFrame ack = AckOf({0, 5});
  const AckResult result = ledger.OnAckReceived(ack, sim::Millis(30));
  EXPECT_FALSE(result.rtt_sample_available);
  EXPECT_TRUE(result.any_ack_eliciting_newly_acked);
}

TEST(SentPacketLedger, DuplicateAckYieldsNothingNew) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  ledger.OnAckReceived(AckOf({0}), sim::Millis(10));
  const AckResult again = ledger.OnAckReceived(AckOf({0}), sim::Millis(20));
  EXPECT_TRUE(again.newly_acked.empty());
  EXPECT_FALSE(again.rtt_sample_available);
}

TEST(SentPacketLedger, PacketThresholdLossAfterThreeNewerAcked) {
  SentPacketLedger ledger;
  for (std::uint64_t pn = 0; pn <= 3; ++pn) ledger.OnPacketSent(MakePacket(pn, 0));
  // Ack 3 only: pn 0 is kPacketThreshold=3 behind -> lost; 1,2 not yet.
  ledger.OnAckReceived(AckOf({3}), sim::Millis(10));
  const auto lost = ledger.DetectLoss(sim::Millis(10), sim::Seconds(10));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].packet_number, 0u);
  EXPECT_EQ(ledger.unacked_count(), 2u);
}

TEST(SentPacketLedger, TimeThresholdLoss) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  ledger.OnPacketSent(MakePacket(1, sim::Millis(5)));
  ledger.OnAckReceived(AckOf({1}), sim::Millis(10));
  // loss_delay 8 ms: pn 0 sent at 0 is over the threshold at t=10.
  const auto lost = ledger.DetectLoss(sim::Millis(10), sim::Millis(8));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].packet_number, 0u);
}

TEST(SentPacketLedger, LossTimeSetForNotYetLostPackets) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, sim::Millis(9)));
  ledger.OnPacketSent(MakePacket(1, sim::Millis(10)));
  ledger.OnAckReceived(AckOf({1}), sim::Millis(12));
  const auto lost = ledger.DetectLoss(sim::Millis(12), sim::Millis(20));
  EXPECT_TRUE(lost.empty());
  EXPECT_EQ(ledger.loss_time(), sim::Millis(29));  // 9 + 20
}

TEST(SentPacketLedger, NoLossDetectionBeforeAnyAck) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  const auto lost = ledger.DetectLoss(sim::Seconds(10), sim::Millis(1));
  EXPECT_TRUE(lost.empty());
  EXPECT_EQ(ledger.loss_time(), sim::kNever);
}

TEST(SentPacketLedger, HasAckElicitingInFlight) {
  SentPacketLedger ledger;
  EXPECT_FALSE(ledger.HasAckElicitingInFlight());
  ledger.OnPacketSent(MakePacket(0, 0));
  EXPECT_TRUE(ledger.HasAckElicitingInFlight());
  ledger.OnAckReceived(AckOf({0}), sim::Millis(1));
  EXPECT_FALSE(ledger.HasAckElicitingInFlight());
}

TEST(SentPacketLedger, LastAckElicitingSentTime) {
  SentPacketLedger ledger;
  EXPECT_FALSE(ledger.LastAckElicitingSentTime().has_value());
  ledger.OnPacketSent(MakePacket(0, sim::Millis(3)));
  ledger.OnPacketSent(MakePacket(1, sim::Millis(7)));
  ASSERT_TRUE(ledger.LastAckElicitingSentTime().has_value());
  EXPECT_EQ(*ledger.LastAckElicitingSentTime(), sim::Millis(7));
}

TEST(SentPacketLedger, OutstandingRetransmittableCollectsFrames) {
  SentPacketLedger ledger;
  SentPacket packet = MakePacket(0, 0);
  // Backing storage stands in for the run arena; the ledger only sees spans.
  quic::Frame backing[] = {quic::CryptoFrame{0, 100, tls::MessageType::kClientHello}};
  packet.retransmittable = FrameSpan{backing, 1};
  ledger.OnPacketSent(std::move(packet));
  const auto frames = ledger.OutstandingRetransmittable();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<quic::CryptoFrame>(frames[0]));
}

TEST(SentPacketLedger, ClearReleasesEverything) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(0, 0));
  ledger.OnPacketSent(MakePacket(1, 0));
  ledger.Clear();
  EXPECT_EQ(ledger.bytes_in_flight(), 0u);
  EXPECT_EQ(ledger.unacked_count(), 0u);
  EXPECT_FALSE(ledger.HasAckElicitingInFlight());
}

TEST(SentPacketLedger, OutstandingPnsAscending) {
  SentPacketLedger ledger;
  ledger.OnPacketSent(MakePacket(2, 0));
  EXPECT_EQ(ledger.out_of_order_sends(), 0u);
  ledger.OnPacketSent(MakePacket(0, 0));
  ledger.OnPacketSent(MakePacket(1, 0));
  EXPECT_EQ(ledger.OutstandingPns(), (std::vector<std::uint64_t>{0, 1, 2}));
  // Both late arrivals took the (counted) repair path.
  EXPECT_EQ(ledger.out_of_order_sends(), 2u);
}

TEST(SentPacketLedger, AckRangesCoverOnlyContainedPns) {
  SentPacketLedger ledger;
  for (std::uint64_t pn = 0; pn < 5; ++pn) ledger.OnPacketSent(MakePacket(pn, 0));
  quic::AckFrame ack;
  ack.largest_acked = 4;
  ack.ranges = {quic::PnRange{3, 4}, quic::PnRange{0, 0}};
  const AckResult result = ledger.OnAckReceived(ack, sim::Millis(10));
  EXPECT_EQ(result.newly_acked.size(), 3u);
  EXPECT_TRUE(ledger.IsOutstanding(1));
  EXPECT_TRUE(ledger.IsOutstanding(2));
}

}  // namespace
}  // namespace quicer::recovery
