#include "recovery/pto.h"

#include <gtest/gtest.h>

namespace quicer::recovery {
namespace {

TEST(Pto, DefaultPtoBeforeFirstSample) {
  RttEstimator rtt;
  PtoConfig config;
  config.default_pto = sim::Millis(200);
  EXPECT_EQ(PtoPeriod(rtt, config, quic::PacketNumberSpace::kInitial, false), sim::Millis(200));
}

TEST(Pto, RfcDefaultIs999Ms) {
  PtoConfig config;
  EXPECT_EQ(config.default_pto, sim::Millis(999));
}

TEST(Pto, SampleBasedPtoIsSmoothedPlus4Var) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(10), 0);
  PtoConfig config;
  EXPECT_EQ(PtoPeriod(rtt, config, quic::PacketNumberSpace::kHandshake, false), sim::Millis(30));
}

TEST(Pto, GranularityFloorsTheVarianceTerm) {
  RttEstimator rtt;
  for (int i = 0; i < 200; ++i) rtt.AddSample(sim::Millis(10), 0);
  // Variance has decayed to ~0; the 1 ms granularity floor applies.
  PtoConfig config;
  const sim::Duration pto = PtoPeriod(rtt, config, quic::PacketNumberSpace::kHandshake, false);
  EXPECT_GE(pto, rtt.smoothed() + kGranularity);
}

TEST(Pto, MaxAckDelayOnlyInConfirmedAppSpace) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(10), 0);
  PtoConfig config;
  config.peer_max_ack_delay = sim::Millis(25);
  const sim::Duration hs = PtoPeriod(rtt, config, quic::PacketNumberSpace::kHandshake, true);
  const sim::Duration app_unconfirmed =
      PtoPeriod(rtt, config, quic::PacketNumberSpace::kAppData, false);
  const sim::Duration app_confirmed =
      PtoPeriod(rtt, config, quic::PacketNumberSpace::kAppData, true);
  EXPECT_EQ(app_unconfirmed, hs);
  EXPECT_EQ(app_confirmed, hs + sim::Millis(25));
}

TEST(Pto, BackoffDoublesPerExpiry) {
  RttEstimator rtt;
  rtt.AddSample(sim::Millis(10), 0);
  PtoConfig config;
  const sim::Duration base =
      PtoPeriodWithBackoff(rtt, config, quic::PacketNumberSpace::kHandshake, false, 0);
  EXPECT_EQ(PtoPeriodWithBackoff(rtt, config, quic::PacketNumberSpace::kHandshake, false, 1),
            2 * base);
  EXPECT_EQ(PtoPeriodWithBackoff(rtt, config, quic::PacketNumberSpace::kHandshake, false, 3),
            8 * base);
}

TEST(Pto, BackoffAppliesToDefaultPtoToo) {
  RttEstimator rtt;
  PtoConfig config;
  config.default_pto = sim::Millis(100);
  EXPECT_EQ(PtoPeriodWithBackoff(rtt, config, quic::PacketNumberSpace::kInitial, false, 2),
            sim::Millis(400));
}

TEST(Pto, BackoffIsCapped) {
  RttEstimator rtt;
  PtoConfig config;
  const sim::Duration huge =
      PtoPeriodWithBackoff(rtt, config, quic::PacketNumberSpace::kInitial, false, 60);
  EXPECT_LT(huge, 2 * sim::Seconds(60));
}

}  // namespace
}  // namespace quicer::recovery
