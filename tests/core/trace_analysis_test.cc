#include "core/trace_analysis.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::core {
namespace {

qlog::PacketEvent Sent(sim::Time t, quic::PacketNumberSpace space, std::uint64_t pn,
                       bool ack_eliciting = true) {
  return qlog::PacketEvent{t, true, space, pn, 1200, ack_eliciting};
}

qlog::PacketEvent Received(sim::Time t, quic::PacketNumberSpace space, std::uint64_t pn) {
  return qlog::PacketEvent{t, false, space, pn, 50, false};
}

TEST(TraceAnalysis, DerivesSampleFromSendReceivePair) {
  qlog::Trace trace;
  trace.RecordPacket(Sent(0, quic::PacketNumberSpace::kInitial, 0));
  trace.RecordPacket(Received(sim::Millis(10), quic::PacketNumberSpace::kInitial, 0));
  const DerivedPtoSeries series = DerivePtoSeries(trace);
  ASSERT_EQ(series.samples.size(), 1u);
  EXPECT_EQ(series.samples[0].rtt, sim::Millis(10));
  ASSERT_TRUE(series.FirstPto().has_value());
  EXPECT_EQ(*series.FirstPto(), sim::Millis(30));  // 3x first sample
}

TEST(TraceAnalysis, NonElicitingSendsProduceNoSamples) {
  qlog::Trace trace;
  trace.RecordPacket(Sent(0, quic::PacketNumberSpace::kInitial, 0, /*ack_eliciting=*/false));
  trace.RecordPacket(Received(sim::Millis(10), quic::PacketNumberSpace::kInitial, 0));
  EXPECT_TRUE(DerivePtoSeries(trace).samples.empty());
}

TEST(TraceAnalysis, SpacesAreIndependent) {
  qlog::Trace trace;
  trace.RecordPacket(Sent(0, quic::PacketNumberSpace::kInitial, 0));
  trace.RecordPacket(Received(sim::Millis(5), quic::PacketNumberSpace::kHandshake, 0));
  EXPECT_TRUE(DerivePtoSeries(trace).samples.empty());
}

TEST(TraceAnalysis, FifoMatchingAcrossMultiplePairs) {
  qlog::Trace trace;
  trace.RecordPacket(Sent(0, quic::PacketNumberSpace::kAppData, 0));
  trace.RecordPacket(Sent(sim::Millis(2), quic::PacketNumberSpace::kAppData, 1));
  trace.RecordPacket(Received(sim::Millis(10), quic::PacketNumberSpace::kAppData, 0));
  trace.RecordPacket(Received(sim::Millis(12), quic::PacketNumberSpace::kAppData, 1));
  const DerivedPtoSeries series = DerivePtoSeries(trace);
  ASSERT_EQ(series.samples.size(), 2u);
  EXPECT_EQ(series.samples[0].rtt, sim::Millis(10));
  EXPECT_EQ(series.samples[1].rtt, sim::Millis(10));  // 12 - 2
}

TEST(TraceAnalysis, MetricsFollowRfcFormulas) {
  qlog::Trace trace;
  trace.RecordPacket(Sent(0, quic::PacketNumberSpace::kAppData, 0));
  trace.RecordPacket(Received(sim::Millis(100), quic::PacketNumberSpace::kAppData, 0));
  trace.RecordPacket(Sent(sim::Millis(100), quic::PacketNumberSpace::kAppData, 1));
  trace.RecordPacket(Received(sim::Millis(160), quic::PacketNumberSpace::kAppData, 1));
  const DerivedPtoSeries series = DerivePtoSeries(trace);
  ASSERT_EQ(series.metrics.size(), 2u);
  EXPECT_EQ(series.metrics[0].smoothed_rtt, sim::Millis(100));
  EXPECT_EQ(series.metrics[0].rtt_var, sim::Millis(50));
  // Second sample 60 ms: var = 3/4*50 + 1/4*40 = 47.5; srtt = 95.
  EXPECT_EQ(series.metrics[1].rtt_var, sim::Millis(47.5));
  EXPECT_EQ(series.metrics[1].smoothed_rtt, sim::Millis(95));
}

TEST(TraceAnalysis, EndToEndDerivedFirstPtoMatchesExposed) {
  // The paper's consistency check: PTOs computed from packets must agree
  // with the implementation's own (when the implementation is faithful).
  ExperimentConfig config;
  // quiche exposes every metric update (Appendix E), so its first exposed
  // PTO corresponds to the first sample the derivation reconstructs.
  config.client = clients::ClientImpl::kQuiche;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.rtt = sim::Millis(9);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 4096;
  ExposureComparison comparison;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection&) {
    comparison = CompareExposure(client.trace());
  });
  ASSERT_GT(comparison.derived_samples, 0u);
  if (comparison.first_pto_difference.has_value()) {
    // Derived matching is approximate (no ACK ranges in packet events), but
    // the first PTO must agree within a couple of milliseconds.
    EXPECT_LT(*comparison.first_pto_difference, sim::Millis(3));
  }
}

TEST(TraceAnalysis, DerivedSamplesExceedExposedForStingyLoggers) {
  // Appendix E: some implementations expose only a fraction of their metric
  // updates; packet-derived analysis recovers the rest.
  ExperimentConfig config;
  config.client = clients::ClientImpl::kPicoquic;  // 30 % exposure
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  config.rtt = sim::Millis(20);
  config.response_body_bytes = 512 * 1024;
  ExposureComparison comparison;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection&) {
    comparison = CompareExposure(client.trace());
  });
  EXPECT_GT(comparison.derived_samples, comparison.exposed_updates);
}

TEST(TraceAnalysis, CountSamplesMatchesFig11Inputs) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.rtt = sim::Millis(20);
  config.response_body_bytes = 256 * 1024;
  SampleCounts counts;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection&) {
    counts = CountSamples(client.trace());
  });
  EXPECT_GT(counts.packets_with_new_acks, 0u);
  EXPECT_GT(counts.exposed_metric_updates, 0u);
  EXPECT_GT(counts.exposure_ratio, 0.0);
  EXPECT_LE(counts.exposure_ratio, 1.05);
}

}  // namespace
}  // namespace quicer::core
