// TSan-targeted stress coverage for the concurrency hot spots the tsan CI
// job exists to watch: ThreadPool work stealing under submission pressure,
// shutdown while tasks are in flight (including tasks that Submit more
// work), the serialized SweepObserver contract, thread-local quic pool
// acquire/release from many workers, and telemetry counting concurrent with
// the end-of-loop snapshot. The assertions are deliberately coarse — the
// point of these tests is the interleavings they force under
// -DQUICER_SANITIZE=thread, where any unsynchronized access fails the run.
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/sweep.h"
#include "obs/telemetry.h"
#include "quic/pool.h"

namespace quicer::core {
namespace {

constexpr unsigned kStressThreads = 8;

TEST(ThreadPoolStress, WorkStealingUnderCrossThreadSubmission) {
  // Four external threads race Submit against eight workers stealing from
  // each other's deques; every task must run exactly once. The assertion
  // runs after ~ThreadPool, which drains every queued task before joining.
  constexpr int kSubmitters = 4;
  constexpr int kTasksPerSubmitter = 2000;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(kStressThreads);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &executed] {
        for (int i = 0; i < kTasksPerSubmitter; ++i) {
          pool.Submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    // ParallelFor interleaves its lanes with the external submissions, so
    // stealing crosses both kinds of work while the deques churn.
    pool.ParallelFor(256, [](std::size_t) {});
    for (std::thread& t : submitters) t.join();
  }
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStress, ShutdownWithTasksInFlight) {
  // Destroy pools while submitted tasks are still queued: the destructor
  // must drain every task, and tasks that Submit follow-up work while the
  // pool is stopping must not be lost or raced.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(kStressThreads);
      for (int i = 0; i < 64; ++i) {
        pool.Submit([&pool, &ran] {
          ran.fetch_add(1, std::memory_order_relaxed);
          pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        });
      }
      // No join here: ~ThreadPool races the drain against the submissions.
    }
    EXPECT_EQ(ran.load(), 128) << "round " << round;
  }
}

TEST(ThreadPoolStress, NestedParallelForFromEveryWorker) {
  ThreadPool pool(kStressThreads);
  std::atomic<int> inner{0};
  pool.ParallelFor(kStressThreads * 4, [&](std::size_t) {
    pool.ParallelFor(32, [&](std::size_t) { inner.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(inner.load(), static_cast<int>(kStressThreads * 4 * 32));
}

TEST(ThreadPoolStress, PoolAcquireReleaseFromAllWorkers) {
  // Hammer the thread-local quic pools from every worker: acquire a nest of
  // containers, exercise them, release in mixed order. The pools are
  // per-thread free lists, so the only cross-thread state is the telemetry
  // counters — any other sharing is a bug this test exists to expose.
  ThreadPool pool(kStressThreads);
  std::atomic<int> cycles{0};
  pool.ParallelFor(kStressThreads * 64, [&](std::size_t i) {
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<quic::Frame> frames = quic::AcquireFrameVec();
      frames.push_back(quic::PingFrame{});
      quic::AckFrame ack;
      ack.ranges = quic::AcquirePnRangeVec();
      ack.ranges.push_back({0, i});
      frames.push_back(std::move(ack));
      quic::Datagram datagram = quic::AcquireDatagram();
      quic::Packet packet;
      packet.frames = std::move(frames);
      datagram.packets.push_back(std::move(packet));
      quic::ReleaseDatagram(std::move(datagram));
      std::vector<quic::Packet> packets = quic::AcquirePacketVec();
      quic::ReleasePacketVec(std::move(packets));
    }
    cycles.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(cycles.load(), static_cast<int>(kStressThreads * 64));
}

TEST(ThreadPoolStress, TelemetryCountingAcrossWorkers) {
  // All workers count into their per-thread registries while the loop runs;
  // the end-of-loop Snapshot must observe every bump through ParallelFor's
  // completion edge (this is exactly the RunSweep telemetry bracket).
  obs::EnableProcess();
  obs::ResetAll();
  ThreadPool pool(kStressThreads);
  constexpr std::size_t kJobs = 4000;
  pool.ParallelFor(kJobs, [](std::size_t) {
    obs::EnsureThisThread();
    obs::Count(obs::kEventsRun);
    obs::CountMax(obs::kPoolFrameHighWater, 7);
  });
  const auto snapshot = obs::Snapshot();
  EXPECT_GE(snapshot[obs::kEventsRun], kJobs);
  EXPECT_GE(snapshot[obs::kPoolFrameHighWater], 7u);
}

TEST(ThreadPoolStress, ObserverSerializedUnderParallelExecution) {
  // The SweepObserver contract: called after every completed point, never
  // concurrently. The unguarded counter would race (and fail under TSan) if
  // the engine ever called the observer from two workers at once.
  SweepSpec spec;
  spec.name = "stress_observer";
  spec.repetitions = 3;
  spec.axes.rtts = {sim::Millis(1), sim::Millis(2), sim::Millis(3), sim::Millis(4),
                    sim::Millis(5), sim::Millis(6), sim::Millis(7), sim::Millis(8)};
  spec.runner = [](const SweepRunContext& run) {
    return std::vector<double>{static_cast<double>(run.repetition)};
  };
  std::size_t observed_points = 0;  // unguarded on purpose
  bool reentered = false;
  std::atomic<bool> in_observer{false};
  spec.observer = [&](const SweepProgress& progress) {
    if (in_observer.exchange(true)) reentered = true;
    observed_points = progress.points_completed;
    in_observer.store(false);
  };
  const SweepResult result = RunSweep(spec);
  EXPECT_FALSE(reentered);
  EXPECT_EQ(observed_points, result.points.size());
  EXPECT_EQ(result.points.size(), 8u);
}

}  // namespace
}  // namespace quicer::core
