#include "core/parallel.h"

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace quicer::core {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 4096;
  return config;
}

double Ttfb(const ExperimentResult& result) { return result.TtfbMs(); }

TEST(Parallel, MatchesSerialRepetitionsExactly) {
  ExperimentConfig config = SmallConfig();
  config.seed = 77;
  const auto serial = RunRepetitions(config, 16, Ttfb);
  const auto parallel = RunRepetitionsParallel(config, 16, Ttfb);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << i;
  }
}

TEST(Parallel, SingleThreadWorks) {
  const auto values = RunRepetitionsParallel(SmallConfig(), 4, Ttfb, /*threads=*/1);
  ASSERT_EQ(values.size(), 4u);
  for (double v : values) EXPECT_GT(v, 0.0);
}

TEST(Parallel, MoreThreadsThanJobsWorks) {
  const auto values = RunRepetitionsParallel(SmallConfig(), 2, Ttfb, /*threads=*/16);
  EXPECT_EQ(values.size(), 2u);
}

TEST(Parallel, ZeroRepetitionsEmpty) {
  EXPECT_TRUE(RunRepetitionsParallel(SmallConfig(), 0, Ttfb).empty());
}

TEST(Parallel, ExperimentsParallelPreservesOrder) {
  std::vector<ExperimentConfig> configs;
  for (double rtt_ms : {5.0, 10.0, 20.0, 40.0}) {
    ExperimentConfig config = SmallConfig();
    config.rtt = sim::Millis(rtt_ms);
    configs.push_back(config);
  }
  const auto results = RunExperimentsParallel(configs);
  ASSERT_EQ(results.size(), 4u);
  // TTFB grows with RTT, so order is verifiable.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].TtfbMs(), results[i - 1].TtfbMs());
  }
}

TEST(Parallel, DeterministicAcrossThreadCounts) {
  ExperimentConfig config = SmallConfig();
  config.behavior = quic::ServerBehavior::kInstantAck;
  const auto a = RunRepetitionsParallel(config, 12, Ttfb, 2);
  const auto b = RunRepetitionsParallel(config, 12, Ttfb, 8);
  EXPECT_EQ(a, b);
}

TEST(Parallel, LossyConfigBitIdenticalToSerialAcrossThreadCounts) {
  // The thread-pool path must preserve seed-order determinism on a config
  // whose runs actually diverge (random loss consults the seeded RNG).
  ExperimentConfig config = SmallConfig();
  config.seed = 42;
  config.loss.DropRandom(sim::Direction::kServerToClient, 0.08);
  config.loss.DropRandom(sim::Direction::kClientToServer, 0.05);
  config.time_limit = sim::Seconds(30);

  const auto serial = RunRepetitions(config, 15, Ttfb);
  for (unsigned threads : {1u, 2u, 7u}) {
    const auto parallel = RunRepetitionsParallel(config, 15, Ttfb, threads);
    ASSERT_EQ(serial.size(), parallel.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "threads=" << threads << " rep=" << i;
    }
  }
}

}  // namespace
}  // namespace quicer::core
