#include "core/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace quicer::core {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::Escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::Escape("9.5"), "9.5");
}

TEST(Csv, EscapeQuotesAndSeparators) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, CountsRowsAndReportsActive) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/quicer_csv_test.csv";
  {
    CsvWriter writer(dir, "quicer_csv_test", {"rtt_ms", "ttfb_ms"});
    ASSERT_TRUE(writer.active());
    writer.Row({9.0, 26.4});
    writer.Row({20.0, 48.25});
    writer.TextRow({"note", "tail row"});
    EXPECT_EQ(writer.rows(), 3u);
  }
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("rtt_ms,ttfb_ms"), std::string::npos);
  EXPECT_NE(content.find("9,26.4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, FullRoundTripAfterClose) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/quicer_csv_roundtrip.csv";
  {
    CsvWriter writer(dir, "quicer_csv_roundtrip", {"a", "b,c"});
    writer.Row({1.5, 2.0});
    writer.TextRow({"x\"y", "z"});
  }
  const std::string content = ReadFile(path);
  EXPECT_EQ(content, "a,\"b,c\"\n1.5,2\n\"x\"\"y\",z\n");
  std::remove(path.c_str());
}

TEST(Csv, UnwritableDirectoryIsSilentlyInactive) {
  CsvWriter writer("/nonexistent/dir/zzz", "x", {"a"});
  EXPECT_FALSE(writer.active());
  writer.Row({1.0});  // must not crash
  EXPECT_EQ(writer.rows(), 0u);
}

TEST(Csv, EmptyDirectoryMeansDetached) {
  CsvWriter writer("", "x", {"a"});
  EXPECT_FALSE(writer.active());
}

TEST(Csv, DataDirFromEnvRoundTrip) {
  ::setenv("QUICER_DATA_DIR", "/tmp/quicer-data", 1);
  auto dir = DataDirFromEnv();
  ASSERT_TRUE(dir.has_value());
  EXPECT_EQ(*dir, "/tmp/quicer-data");
  ::unsetenv("QUICER_DATA_DIR");
  EXPECT_FALSE(DataDirFromEnv().has_value());
}

}  // namespace
}  // namespace quicer::core
