// Harness-level tests: configuration plumbing, metric extraction, and the
// handshake-mode matrix.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace quicer::core {
namespace {

TEST(Experiment, LinkStatsPopulated) {
  ExperimentConfig config;
  config.response_body_bytes = 10 * 1024;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client_to_server.datagrams_sent, 0u);
  EXPECT_GT(result.server_to_client.datagrams_sent, result.client_to_server.datagrams_sent)
      << "a download sends more server->client datagrams";
  EXPECT_EQ(result.client_to_server.datagrams_dropped, 0u);
}

TEST(Experiment, TimeLimitRespected) {
  ExperimentConfig config;
  sim::LossPattern pattern;
  pattern.DropRandom(sim::Direction::kClientToServer, 1.0);
  config.loss = pattern;
  config.time_limit = sim::Seconds(3);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_LT(result.end_time, sim::Seconds(10));
}

TEST(Experiment, ClientConfigOverrideApplied) {
  ExperimentConfig config;
  quic::ConnectionConfig override = clients::MakeClientConfig(config.client, config.http);
  override.pto.default_pto = sim::Millis(123);
  config.client_config_override = override;
  RunExperiment(config, [](const quic::ClientConnection& client,
                           const quic::ServerConnection&) {
    EXPECT_EQ(client.config().pto.default_pto, sim::Millis(123));
  });
}

TEST(Experiment, CertificateSizePropagatesToBothEndpoints) {
  ExperimentConfig config;
  config.certificate_bytes = tls::kLargeCertificateBytes;
  RunExperiment(config, [](const quic::ClientConnection& client,
                           const quic::ServerConnection& server) {
    EXPECT_EQ(client.config().tls.certificate, tls::kLargeCertificateBytes);
    EXPECT_EQ(server.config().tls.certificate, tls::kLargeCertificateBytes);
  });
}

TEST(Experiment, RealizedCertDelayIncludesFetchAndSigning) {
  ExperimentConfig config;
  config.cert_fetch_delay = sim::Millis(40);
  config.signing = tls::SigningModel{sim::Millis(3), 0.0};
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.realized_cert_delay, sim::Millis(43));
}

TEST(Experiment, ResponseTtfbEqualsTtfbUnderHttp1) {
  ExperimentConfig config;
  config.http = http::Version::kHttp1;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_DOUBLE_EQ(result.TtfbMs(), result.ResponseTtfbMs());
}

TEST(Experiment, ResponseTtfbLaterThanTtfbUnderHttp3) {
  ExperimentConfig config;
  config.http = http::Version::kHttp3;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_LT(result.TtfbMs(), result.ResponseTtfbMs());
}

TEST(Experiment, BandwidthShapesTransferTime) {
  ExperimentConfig slow;
  slow.response_body_bytes = 100 * 1024;
  slow.bandwidth_bps = 1e6;
  ExperimentConfig fast = slow;
  fast.bandwidth_bps = 100e6;
  const ExperimentResult r_slow = RunExperiment(slow);
  const ExperimentResult r_fast = RunExperiment(fast);
  ASSERT_TRUE(r_slow.completed && r_fast.completed);
  EXPECT_GT(r_slow.client.response_complete, 2 * r_fast.client.response_complete);
}

// Mode matrix: every client completes under every handshake mode.
struct ModeCase {
  clients::ClientImpl client;
  HandshakeMode mode;
};

class ModeMatrix : public ::testing::TestWithParam<ModeCase> {};

TEST_P(ModeMatrix, Completes) {
  ExperimentConfig config;
  config.client = GetParam().client;
  config.mode = GetParam().mode;
  config.response_body_bytes = 10 * 1024;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed) << clients::Name(GetParam().client);
}

std::vector<ModeCase> ModeCases() {
  std::vector<ModeCase> cases;
  for (clients::ClientImpl impl : clients::kAllClients) {
    for (HandshakeMode mode :
         {HandshakeMode::k1Rtt, HandshakeMode::k0Rtt, HandshakeMode::kRetry}) {
      cases.push_back({impl, mode});
    }
  }
  return cases;
}

std::string ModeCaseName(const ::testing::TestParamInfo<ModeCase>& info) {
  std::string name(clients::Name(info.param.client));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  switch (info.param.mode) {
    case HandshakeMode::k1Rtt: name += "_1rtt"; break;
    case HandshakeMode::k0Rtt: name += "_0rtt"; break;
    case HandshakeMode::kRetry: name += "_retry"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllClientsModes, ModeMatrix, ::testing::ValuesIn(ModeCases()),
                         ModeCaseName);

TEST(HandshakeModeNames, RoundTripsEveryEnumValue) {
  for (HandshakeMode mode :
       {HandshakeMode::k1Rtt, HandshakeMode::k0Rtt, HandshakeMode::kRetry}) {
    const std::string_view label = ToString(mode);
    EXPECT_NE(label, "?");
    const auto parsed = HandshakeModeFromString(label);
    ASSERT_TRUE(parsed.has_value()) << label;
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(HandshakeModeFromString("definitely-not-a-mode").has_value());
  EXPECT_FALSE(HandshakeModeFromString("").has_value());
}

}  // namespace
}  // namespace quicer::core
