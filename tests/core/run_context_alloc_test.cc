// Steady-state allocation regression test for whole repeated repetitions.
//
// PR-by-PR the engine's hot paths stopped allocating: the event queue
// recycles slots, packet/frame vectors round-trip through thread-local
// pools, ledger frame spans live on the run arena, and RunContext resets
// the link and both endpoints in place instead of re-constructing them.
// The end-to-end promise is that once a context has warmed up, an entire
// repetition — schedule, handshake, certificate fetch, response transfer,
// reset — performs no heap allocation at all. This binary replaces global
// operator new/delete with counting versions to pin that down; any
// regression (a container reconstructed instead of reset, a closure
// outgrowing its inline buffer, a per-run string) shows up as a nonzero
// count.
//
// This file must stay its own test binary: the global replacement operators
// affect every allocation in the process.

#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "obs/telemetry.h"

namespace {

std::size_t g_alloc_count = 0;
bool g_counting = false;

struct AllocationScope {
  AllocationScope() {
    g_alloc_count = 0;
    g_counting = true;
  }
  ~AllocationScope() { g_counting = false; }
  std::size_t count() const { return g_alloc_count; }
};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_alloc_count;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace quicer::core {
namespace {

ExperimentConfig QuietConfig(std::uint64_t seed) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 10 * 1024;
  config.seed = seed;
  // The one per-run allocation the engine deliberately keeps is the metrics
  // extract: ExperimentResult steals the client trace's qlog update vector,
  // so the trace must re-reserve it next run. Suppress metrics logging (the
  // early-return happens before any reserve) so the test isolates the
  // engine itself; packet capture is off for the same reason.
  quic::ConnectionConfig client = clients::MakeClientConfig(config.client, config.http);
  client.trace.metrics_exposure = 0.0;
  client.trace.capture_packets = false;
  config.client_config_override = client;
  return config;
}

TEST(RunContextAlloc, RepeatedRepetitionsAreAllocationFree) {
  RunContext context;

  // Warm-up: grow every container (queue slots, pools, ledger and ack
  // buffers, arena chunks, trace capacity) to the working set of each seed.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentResult result = context.Run(QuietConfig(seed));
    ASSERT_TRUE(result.completed);
  }

  // Steady state: replay the same seeds. Runs are deterministic per seed, so
  // the warmed working set covers them exactly — any allocation is churn.
  AllocationScope scope;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      context.Run(QuietConfig(seed));
    }
  }
  EXPECT_EQ(scope.count(), 0u);
}

TEST(RunContextAlloc, ReusedContextMatchesFreshContext) {
  // Reset-in-place must be invisible: a context that just ran seed 3 and is
  // reset to seed 5 produces the byte-for-byte metrics of a cold context
  // running seed 5.
  RunContext warm;
  warm.Run(QuietConfig(3));
  const ExperimentResult reused = warm.Run(QuietConfig(5));

  RunContext cold;
  const ExperimentResult fresh = cold.Run(QuietConfig(5));

  EXPECT_EQ(reused.completed, fresh.completed);
  EXPECT_EQ(reused.end_time, fresh.end_time);
  EXPECT_EQ(reused.client.first_response_byte, fresh.client.first_response_byte);
  EXPECT_EQ(reused.client.handshake_confirmed, fresh.client.handshake_confirmed);
  EXPECT_EQ(reused.client.datagrams_sent, fresh.client.datagrams_sent);
  EXPECT_EQ(reused.client.rtt_samples, fresh.client.rtt_samples);
  EXPECT_EQ(reused.server.datagrams_sent, fresh.server.datagrams_sent);
  EXPECT_EQ(reused.realized_cert_delay, fresh.realized_cert_delay);
  EXPECT_EQ(reused.client_to_server.datagrams_delivered,
            fresh.client_to_server.datagrams_delivered);
}

TEST(RunContextAlloc, TelemetryCountingStaysAllocationFree) {
  // EnableProcess is sticky for the rest of the process, so this test is
  // declared last. With telemetry live the hot paths count events, pool
  // traffic, netem queue depths and loss-detection activity — each count a
  // branch plus an array increment on a registry created here, outside the
  // counting scope. A steady-state repetition must stay allocation-free
  // with the instrumentation armed.
  obs::EnableProcess();
  obs::EnsureThisThread();

  RunContext context;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExperimentResult result = context.Run(QuietConfig(seed));
    ASSERT_TRUE(result.completed);
  }

  AllocationScope scope;
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      context.Run(QuietConfig(seed));
    }
  }
  EXPECT_EQ(scope.count(), 0u);

  // And the counters actually moved — the zero-alloc loop above was
  // measuring instrumented code, not a disabled path.
  EXPECT_GT(obs::Snapshot()[obs::kEventsRun], 0u);
}

}  // namespace
}  // namespace quicer::core
