// The links axis through the whole sweep machinery: enumeration and point
// ids, bit-identical execution at any parallelism, shard + merge byte
// identity, the CSV/JSON export labels, and the scenario-file round trip
// with its content-hash guard. Includes the jitter-reordering contract:
// deliveries under jitter larger than the inter-datagram spacing stay
// deterministic across thread counts and shard layouts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/scenario.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"
#include "netem/model.h"

namespace quicer::core {
namespace {

netem::LinkModel GilbertBoth(double p, double r) {
  netem::LinkModel model;
  for (int dir : {netem::kUp, netem::kDown}) {
    model.loss[dir].kind = netem::LossModel::Kind::kGilbertElliott;
    model.loss[dir].p = p;
    model.loss[dir].r = r;
  }
  return model;
}

netem::LinkModel ShallowDownQueue(std::size_t depth_pkts) {
  netem::LinkModel model;
  model.queue[netem::kDown].kind = netem::QueueModel::Kind::kFifo;
  model.queue[netem::kDown].depth_pkts = depth_pkts;
  return model;
}

netem::LinkModel AsymmetricPath() {
  netem::LinkModel model;
  model.path[netem::kUp].bandwidth_bps = 2e6;
  model.path[netem::kDown].one_way_delay = sim::Millis(30);
  model.path[netem::kDown].jitter = sim::Millis(2);
  return model;
}

/// An experiment-driven spec with a three-model links axis: bursty loss, a
/// shallow bottleneck queue, and an asymmetric path.
SweepSpec NetemSpec() {
  SweepSpec spec;
  spec.name = "link_axis_test";
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = 4096;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.links = {{"ge-burst", GilbertBoth(0.2, 0.4)},
                     {"q4", ShallowDownQueue(4)},
                     {"asym", AsymmetricPath()}};
  spec.repetitions = 5;
  spec.metrics = {{"response_ttfb_ms", MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const ExperimentResult& r) { return r.ResponseTtfbMs(); }},
                  {"end_time_ms", MetricMode::kTrace, /*exclude_negative=*/false,
                   [](const ExperimentResult& r) { return sim::ToMillis(r.end_time); }}};
  return spec;
}

std::string CsvText(const SweepResult& result) {
  const std::string path = testing::TempDir() + "/link_axis_csv.csv";
  {
    CsvWriter csv(testing::TempDir(), "link_axis_csv", SweepCsvHeader());
    EXPECT_TRUE(csv.active());
    WriteSweepCsv(result, csv);
  }
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

SweepResult EnumerateOnly(SweepSpec spec) {
  spec.enumerate_sink = [](const SweepSpec&, const SweepResult&) {};
  return RunSweep(spec);
}

SweepResult ShardRoundTripMerge(const SweepSpec& spec, std::size_t shards) {
  std::vector<SweepResult> partials;
  for (std::size_t i = 0; i < shards; ++i) {
    SweepSpec shard_spec = spec;
    shard_spec.shard.index = i;
    shard_spec.shard.count = shards;
    const SweepResult executed = RunSweep(shard_spec);
    std::string error;
    std::optional<SweepResult> parsed =
        ParseSweepPartialJson(SweepPartialJson(executed), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    partials.push_back(std::move(*parsed));
  }
  std::string error;
  const std::optional<SweepResult> merged = MergeSweepResults(partials, &error);
  EXPECT_TRUE(merged.has_value()) << error;
  return *merged;
}

TEST(SweepLinkAxis, EnumerationCountsAndLabelsTheAxis) {
  const SweepSpec spec = NetemSpec();
  EXPECT_EQ(EnumerateCount(spec), 6u);  // 3 links x 2 behaviors
  const SweepResult enumerated = EnumerateOnly(spec);
  ASSERT_EQ(enumerated.points.size(), 6u);
  // The links loop nests outside the behavior loop; each point's config
  // carries the axis model.
  const char* expected[] = {"ge-burst", "ge-burst", "q4", "q4", "asym", "asym"};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(enumerated.points[i].point.link, expected[i]) << i;
    EXPECT_EQ(enumerated.points[i].point.config.link,
              spec.axes.links[i / 2].model)
        << i;
  }
}

TEST(SweepLinkAxis, EmptyAxisKeepsTheBaseModelAndDefaultLabel) {
  SweepSpec spec = NetemSpec();
  spec.axes.links.clear();
  EXPECT_EQ(EnumerateCount(spec), 2u);
  const SweepResult enumerated = EnumerateOnly(spec);
  for (const PointSummary& summary : enumerated.points) {
    EXPECT_EQ(summary.point.link, "default");
    EXPECT_TRUE(summary.point.config.link.IsDefault());
  }
  // A non-default base model without an axis is labeled "base" and survives
  // enumeration untouched.
  spec.base.link = GilbertBoth(0.1, 0.5);
  const SweepResult with_base = EnumerateOnly(spec);
  for (const PointSummary& summary : with_base.points) {
    EXPECT_EQ(summary.point.link, "base");
    EXPECT_EQ(summary.point.config.link, spec.base.link);
  }
}

TEST(SweepLinkAxis, CsvFoldsTheLabelIntoTheExtrasColumn) {
  const SweepResult result = RunSweep(NetemSpec());
  const std::string csv = CsvText(result);
  EXPECT_NE(csv.find("link=ge-burst"), std::string::npos);
  EXPECT_NE(csv.find("link=q4"), std::string::npos);
  EXPECT_NE(csv.find("link=asym"), std::string::npos);
  // JSON carries the label as its own (off-default only) field.
  EXPECT_NE(SweepResultJson(result).find("\"link\": \"q4\""), std::string::npos);

  SweepSpec plain = NetemSpec();
  plain.axes.links.clear();
  const SweepResult default_result = RunSweep(plain);
  EXPECT_EQ(CsvText(default_result).find("link="), std::string::npos);
  EXPECT_EQ(SweepResultJson(default_result).find("\"link\""), std::string::npos);
}

// Netem models draw from per-repetition forked RNGs, so the realized drops
// and queue timings are a function of (point, repetition) alone: any
// parallelism cap reproduces the same bytes.
TEST(SweepLinkAxis, ExecutionBitIdenticalAcrossParallelism) {
  const SweepSpec spec = NetemSpec();
  const SweepResult serial = RunSweep(spec, 1);
  const std::string json = SweepResultJson(serial);
  const std::string csv = CsvText(serial);
  // The stochastic models actually engaged: bursty loss must abort or delay
  // some repetitions relative to an ideal pipe.
  SweepSpec ideal = NetemSpec();
  ideal.axes.links.clear();
  EXPECT_NE(json, SweepResultJson(RunSweep(ideal)));

  for (const unsigned parallelism : {2u, 7u}) {
    const SweepResult result = RunSweep(spec, parallelism);
    EXPECT_EQ(SweepResultJson(result), json) << parallelism;
    EXPECT_EQ(CsvText(result), csv) << parallelism;
  }
}

TEST(SweepLinkAxis, ShardMergeByteIdenticalAcrossLayouts) {
  const SweepSpec spec = NetemSpec();
  const SweepResult single = RunSweep(spec);
  const std::string json = SweepResultJson(single);
  const std::string csv = CsvText(single);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    const SweepResult merged = ShardRoundTripMerge(spec, shards);
    EXPECT_EQ(SweepResultJson(merged), json) << shards << " shards";
    EXPECT_EQ(CsvText(merged), csv) << shards << " shards";
  }
}

// The jitter-reordering contract (path_jitter well above the inter-datagram
// spacing): reordered deliveries stay a pure function of the seed schedule,
// so thread counts and shard layouts cannot change a byte.
TEST(SweepLinkAxis, JitterReorderingDeterministicAcrossThreadsAndShards) {
  SweepSpec spec = NetemSpec();
  spec.name = "link_jitter_test";
  // ~1 ms serialization per full datagram at 10 Mbit/s; 5 ms uniform jitter
  // reorders aggressively in both directions.
  spec.base.path_jitter = sim::Millis(5);
  const SweepResult serial = RunSweep(spec, 1);
  const std::string json = SweepResultJson(serial);
  const std::string csv = CsvText(serial);

  SweepSpec calm = NetemSpec();
  calm.name = "link_jitter_test";
  EXPECT_NE(json, SweepResultJson(RunSweep(calm)));  // jitter changed outcomes

  for (const unsigned parallelism : {2u, 7u}) {
    EXPECT_EQ(SweepResultJson(RunSweep(spec, parallelism)), json) << parallelism;
  }
  for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
    const SweepResult merged = ShardRoundTripMerge(spec, shards);
    EXPECT_EQ(SweepResultJson(merged), json) << shards << " shards";
    EXPECT_EQ(CsvText(merged), csv) << shards << " shards";
  }
}

TEST(SweepLinkAxis, ScenarioRoundTripPreservesLinks) {
  const SweepSpec spec = NetemSpec();
  const std::string exported = ScenarioFileJson({{"link_bench", &spec}});

  std::string error;
  const std::optional<std::vector<Scenario>> scenarios = ParseScenarioFile(exported, &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  ASSERT_EQ(scenarios->size(), 1u);
  const Scenario& scenario = scenarios->front();
  ASSERT_EQ(scenario.links.size(), 3u);
  EXPECT_EQ(scenario.links[0].label, "ge-burst");
  EXPECT_EQ(scenario.links[0].model, spec.axes.links[0].model);
  EXPECT_EQ(scenario.links[1].model, spec.axes.links[1].model);
  EXPECT_EQ(scenario.links[2].model, spec.axes.links[2].model);

  SweepSpec applied = NetemSpec();
  applied.axes.links.clear();  // ApplyScenario must restore the axis
  ASSERT_TRUE(ApplyScenario(scenario, applied, &error)) << error;
  EXPECT_EQ(ScenarioFileJson({{"link_bench", &applied}}), exported);
  EXPECT_EQ(ScenarioHash(applied), ScenarioHash(spec));
}

// Two grids differing only in one link-model parameter hash apart, and the
// merge phase refuses to mix their partials.
TEST(SweepLinkAxis, ContentHashSeparatesLinkModels) {
  const SweepSpec spec = NetemSpec();
  SweepSpec tweaked = NetemSpec();
  tweaked.axes.links[0].model.loss[netem::kUp].p = 0.25;
  EXPECT_NE(ScenarioHash(spec), ScenarioHash(tweaked));

  SweepSpec shard0 = spec;
  shard0.shard = {0, 2, {}};
  SweepSpec shard1 = tweaked;
  shard1.shard = {1, 2, {}};
  std::string error;
  EXPECT_FALSE(
      MergeSweepResults({RunSweep(shard0), RunSweep(shard1)}, &error).has_value());
  EXPECT_NE(error.find("content-hash mismatch"), std::string::npos) << error;
}

}  // namespace
}  // namespace quicer::core
