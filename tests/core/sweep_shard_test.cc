// The enumerate → execute → merge contract: any shard layout, recombined
// through the partial-result JSON round trip, reproduces the single-process
// exports byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/csv.h"
#include "core/json.h"
#include "core/loss_scenarios.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"

namespace quicer::core {
namespace {

/// A representative experiment-driven spec: behavior x RTT grid, a loss
/// axis resolved against the point, one summary and one trace metric.
SweepSpec RepresentativeSpec() {
  SweepSpec spec;
  spec.name = "shard_test";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = 4096;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.rtts = {sim::Millis(5), sim::Millis(20), sim::Millis(50)};
  spec.axes.losses = {{"second-client-flight", [](const ExperimentConfig& c) {
                         return SecondClientFlightLoss(c.client);
                       }}};
  spec.repetitions = 5;
  spec.metrics = {{"response_ttfb_ms", MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const ExperimentResult& r) { return r.ResponseTtfbMs(); }},
                  {"end_time_ms", MetricMode::kTrace, /*exclude_negative=*/false,
                   [](const ExperimentResult& r) { return sim::ToMillis(r.end_time); }}};
  return spec;
}

std::string CsvText(const SweepResult& result) {
  const std::string path = testing::TempDir() + "/shard_test_csv.csv";
  {
    CsvWriter csv(testing::TempDir(), "shard_test_csv", SweepCsvHeader());
    EXPECT_TRUE(csv.active());
    WriteSweepCsv(result, csv);
  }
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

/// Runs the spec sharded N ways, round-trips every partial through its JSON
/// document, merges, and returns the merged result.
SweepResult ShardRoundTripMerge(const SweepSpec& spec, std::size_t shards) {
  std::vector<SweepResult> partials;
  for (std::size_t i = 0; i < shards; ++i) {
    SweepSpec shard_spec = spec;
    shard_spec.shard.index = i;
    shard_spec.shard.count = shards;
    const SweepResult executed = RunSweep(shard_spec);
    EXPECT_EQ(executed.sharded(), shards > 1) << i;
    std::string error;
    std::optional<SweepResult> parsed = ParseSweepPartialJson(SweepPartialJson(executed), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    partials.push_back(std::move(*parsed));
  }
  std::string error;
  const std::optional<SweepResult> merged = MergeSweepResults(partials, &error);
  EXPECT_TRUE(merged.has_value()) << error;
  return *merged;
}

// The acceptance contract: shard counts 1, 2 and 7 all reproduce the
// single-process CSV and JSON exports byte-identically, through the partial
// JSON round trip.
TEST(SweepShard, MergedExportsByteIdenticalAcrossShardCounts) {
  const SweepSpec spec = RepresentativeSpec();
  const SweepResult single = RunSweep(spec);
  EXPECT_FALSE(single.partial());
  const std::string single_json = SweepResultJson(single);
  const std::string single_csv = CsvText(single);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    const SweepResult merged = ShardRoundTripMerge(spec, shards);
    EXPECT_FALSE(merged.partial()) << shards;
    EXPECT_EQ(merged.total_runs, single.total_runs) << shards;
    EXPECT_EQ(merged.executed_runs, single.executed_runs) << shards;
    EXPECT_EQ(SweepResultJson(merged), single_json) << shards << " shards";
    EXPECT_EQ(CsvText(merged), single_csv) << shards << " shards";
  }
}

// Same contract when per-point accumulators have overflowed into histogram
// mode: the partial files carry the full histogram state verbatim.
TEST(SweepShard, MergedExportsByteIdenticalWithOverflowedAccumulators) {
  SweepSpec spec = RepresentativeSpec();
  spec.name = "shard_overflow_test";
  spec.repetitions = 10;
  spec.reservoir_capacity = 4;  // force overflow at every point
  const SweepResult single = RunSweep(spec);
  ASSERT_FALSE(single.points.front().primary().summary.exact());

  for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
    const SweepResult merged = ShardRoundTripMerge(spec, shards);
    EXPECT_EQ(SweepResultJson(merged), SweepResultJson(single)) << shards;
    EXPECT_EQ(CsvText(merged), CsvText(single)) << shards;
  }
}

TEST(SweepShard, ShardContainsPartitionsTheGrid) {
  SweepShard all;
  EXPECT_TRUE(all.all());
  EXPECT_TRUE(all.Contains(0));
  EXPECT_TRUE(all.Contains(41));

  SweepShard one_of_three{1, 3, {}};
  EXPECT_FALSE(one_of_three.all());
  EXPECT_TRUE(one_of_three.Contains(1));
  EXPECT_TRUE(one_of_three.Contains(4));
  EXPECT_FALSE(one_of_three.Contains(3));

  SweepShard explicit_points{0, 1, {2, 5}};
  EXPECT_FALSE(explicit_points.all());
  EXPECT_TRUE(explicit_points.Contains(2));
  EXPECT_TRUE(explicit_points.Contains(5));
  EXPECT_FALSE(explicit_points.Contains(0));
}

// A sharded execution runs exactly its points — others keep metadata but
// stay unexecuted with empty series — and partial() reflects the subset.
TEST(SweepShard, ExecutesOnlySelectedPoints) {
  SweepSpec spec = RepresentativeSpec();
  spec.shard.points = {1, 4};
  const SweepResult result = RunSweep(spec);
  EXPECT_TRUE(result.partial());
  ASSERT_EQ(result.points.size(), 6u);
  for (const PointSummary& summary : result.points) {
    const bool selected = summary.point.index == 1 || summary.point.index == 4;
    EXPECT_EQ(summary.executed, selected) << summary.point.index;
    EXPECT_EQ(summary.primary().count() > 0, selected) << summary.point.index;
  }
  EXPECT_EQ(result.executed_runs, 2u * 5u);
}

// Executed shard points carry values identical to the same points of a full
// run: the seed schedule depends only on the repetition index.
TEST(SweepShard, ShardValuesMatchFullRunPointwise) {
  const SweepSpec spec = RepresentativeSpec();
  const SweepResult full = RunSweep(spec);
  SweepSpec shard_spec = spec;
  shard_spec.shard = {1, 2, {}};
  const SweepResult shard = RunSweep(shard_spec);
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    if (!shard.points[i].executed) continue;
    EXPECT_EQ(shard.points[i].primary().summary.samples(),
              full.points[i].primary().summary.samples())
        << i;
    EXPECT_EQ(shard.points[i].metrics[1].trace, full.points[i].metrics[1].trace) << i;
  }
}

// The partial JSON document round-trips every field the merge relies on.
TEST(SweepShard, PartialJsonRoundTripPreservesMetadata) {
  SweepSpec spec = RepresentativeSpec();
  spec.seed_base = 900;
  spec.seed_stride = 31;
  spec.shard = {0, 2, {}};
  const SweepResult executed = RunSweep(spec);
  const std::string json = SweepPartialJson(executed);

  std::string error;
  const std::optional<SweepResult> parsed = ParseSweepPartialJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, executed.name);
  EXPECT_EQ(parsed->shard.index, 0u);
  EXPECT_EQ(parsed->shard.count, 2u);
  EXPECT_EQ(parsed->repetitions, executed.repetitions);
  EXPECT_EQ(parsed->reservoir_capacity, executed.reservoir_capacity);
  EXPECT_EQ(parsed->seed_base, 900u);
  EXPECT_EQ(parsed->seed_stride, 31u);
  ASSERT_EQ(parsed->points.size(), executed.points.size());
  for (std::size_t i = 0; i < parsed->points.size(); ++i) {
    EXPECT_EQ(parsed->points[i].executed, executed.points[i].executed) << i;
    EXPECT_EQ(parsed->points[i].point.Key(), executed.points[i].point.Key()) << i;
  }
}

// Budget-skipped points are listed in the partial document, and a --points
// style rerun of exactly those ids merges back into the full result.
TEST(SweepShard, BudgetSkipRerunMergesToFullResult) {
  SweepSpec spec;
  spec.name = "budget_rerun_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}, {"c", 3}}}};
  spec.repetitions = 4;
  spec.metrics = {{"v", MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    return std::vector<double>{static_cast<double>(ctx.point.Extra("k")->value * 10 +
                                                   ctx.repetition)};
  };
  const SweepResult full = RunSweep(spec);

  SweepSpec budgeted = spec;
  budgeted.time_budget_seconds = 1e-9;  // expires before any point starts
  const SweepResult clipped = RunSweep(budgeted);
  EXPECT_TRUE(clipped.partial());
  const std::vector<std::size_t> skipped = clipped.BudgetSkippedPoints();
  ASSERT_EQ(skipped.size(), 3u);

  const std::string partial_json = SweepPartialJson(clipped);
  EXPECT_NE(partial_json.find("\"budget_skipped_points\": [0, 1, 2]"), std::string::npos);

  SweepSpec rerun = spec;
  rerun.shard.points = skipped;
  const SweepResult rerun_result = RunSweep(rerun);

  std::string error;
  std::optional<SweepResult> clipped_rt = ParseSweepPartialJson(partial_json, &error);
  ASSERT_TRUE(clipped_rt.has_value()) << error;
  std::optional<SweepResult> rerun_rt =
      ParseSweepPartialJson(SweepPartialJson(rerun_result), &error);
  ASSERT_TRUE(rerun_rt.has_value()) << error;
  const std::optional<SweepResult> merged =
      MergeSweepResults({*clipped_rt, *rerun_rt}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(SweepResultJson(*merged), SweepResultJson(full));
}

TEST(SweepShard, MergeRejectsMismatchedPartials) {
  const SweepSpec spec = RepresentativeSpec();
  SweepSpec shard0 = spec;
  shard0.shard = {0, 2, {}};
  const SweepResult partial0 = RunSweep(shard0);

  std::string error;
  EXPECT_FALSE(MergeSweepResults({}, &error).has_value());

  // Missing shard 1: its points executed nowhere.
  EXPECT_FALSE(MergeSweepResults({partial0}, &error).has_value());
  EXPECT_NE(error.find("executed in no partial"), std::string::npos);

  // A partial of a different spec (renamed) cannot merge in.
  SweepResult renamed = partial0;
  renamed.name = "other_sweep";
  EXPECT_FALSE(MergeSweepResults({partial0, renamed}, &error).has_value());
  EXPECT_NE(error.find("name mismatch"), std::string::npos);

  // A different grid is caught by the spec content-hash before anything
  // else gets compared.
  SweepSpec other_axes = spec;
  other_axes.axes.rtts = {sim::Millis(5), sim::Millis(21), sim::Millis(50)};
  other_axes.shard = {1, 2, {}};
  const SweepResult wrong_grid = RunSweep(other_axes);
  EXPECT_FALSE(MergeSweepResults({partial0, wrong_grid}, &error).has_value());
  EXPECT_NE(error.find("content-hash mismatch"), std::string::npos);

  // Pre-hash documents (spec_hash 0) still trip the point-key check.
  SweepResult legacy0 = partial0;
  SweepResult legacy1 = wrong_grid;
  legacy0.spec_hash = 0;
  legacy1.spec_hash = 0;
  EXPECT_FALSE(MergeSweepResults({legacy0, legacy1}, &error).has_value());
  EXPECT_NE(error.find("differs between partials"), std::string::npos);
}

// MergeSweepPartialFiles drives the whole cross-process flow: write shard
// files, merge them, and the emitted exports match the single-process pair.
TEST(SweepShard, MergePartialFilesWritesByteIdenticalExports) {
  const SweepSpec spec = RepresentativeSpec();
  const std::string dir = testing::TempDir();
  const SweepResult single = RunSweep(spec);
  ASSERT_TRUE(WriteSweepData(single, dir));

  std::vector<std::string> files;
  for (std::size_t i = 0; i < 2; ++i) {
    SweepSpec shard_spec = spec;
    shard_spec.name = "shard_file_test";
    shard_spec.shard = {i, 2, {}};
    const SweepResult executed = RunSweep(shard_spec);
    ASSERT_TRUE(WriteSweepData(executed, dir));
    files.push_back(dir + "/" + SweepPartialFileName(executed));
  }
  ASSERT_TRUE(MergeSweepPartialFiles(files, dir, nullptr));

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  // Same bytes modulo the sweep name (embedded in the JSON header and CSV
  // rows), which differs to keep the two export sets apart on disk.
  std::string merged_json = slurp(dir + "/shard_file_test_sweep.json");
  std::string single_json = slurp(dir + "/" + spec.name + "_sweep.json");
  ASSERT_NE(merged_json.find("shard_file_test"), std::string::npos);
  std::size_t at;
  while ((at = merged_json.find("shard_file_test")) != std::string::npos) {
    merged_json.replace(at, std::strlen("shard_file_test"), spec.name);
  }
  EXPECT_EQ(merged_json, single_json);
}

// The JSON parser handles the document shapes the partial files use.
TEST(SweepShard, JsonParserRoundTrips) {
  const std::string doc =
      "{\"a\": [1, 2.5, -3e2, null], \"b\": {\"nested\": \"x\\\"y\"}, "
      "\"t\": true, \"f\": false}";
  std::string error;
  const std::optional<JsonValue> parsed = JsonValue::Parse(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_NE(parsed->Get("a"), nullptr);
  EXPECT_EQ(parsed->Get("a")->Items().size(), 4u);
  EXPECT_EQ(parsed->Get("a")->Items()[2].AsNumber(), -300.0);
  EXPECT_TRUE(parsed->Get("a")->Items()[3].is_null());
  EXPECT_EQ(parsed->Get("b")->GetString("nested"), "x\"y");
  EXPECT_TRUE(parsed->GetBool("t"));
  EXPECT_FALSE(parsed->GetBool("f", true));

  EXPECT_FALSE(JsonValue::Parse("{\"unterminated\": ", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("[1] trailing", &error).has_value());
  EXPECT_FALSE(JsonValue::Parse("not json", &error).has_value());

  // %.17g numbers round-trip exactly through the parser (byte-identity
  // depends on it).
  const double value = 123.456789012345678;
  const std::optional<JsonValue> num = JsonValue::Parse(JsonNumber(value));
  ASSERT_TRUE(num.has_value());
  EXPECT_EQ(num->AsNumber(), value);
}

}  // namespace
}  // namespace quicer::core
