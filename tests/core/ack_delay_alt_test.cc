#include "core/ack_delay_alt.h"

#include <gtest/gtest.h>

#include "core/pto_model.h"

namespace quicer::core {
namespace {

AckDelayAltScenario Scenario(double rtt_ms, double delta_ms, double reported_ms) {
  AckDelayAltScenario scenario;
  scenario.rtt = sim::Millis(rtt_ms);
  scenario.delta_t = sim::Millis(delta_ms);
  scenario.reported_ack_delay = sim::Millis(reported_ms);
  return scenario;
}

TEST(AckDelayAlt, RfcStandardIgnoresReportedDelay) {
  // Reason 1 of Appendix D: PTO initialisation ignores the ack delay.
  const auto result = EvaluateStrategy(AckDelayStrategy::kRfcStandard, Scenario(9, 4, 4));
  EXPECT_EQ(result.first_pto_wfc, FirstPto(sim::Millis(13)));
  EXPECT_EQ(result.first_pto_iack, FirstPto(sim::Millis(9)));
  EXPECT_GT(result.first_pto_wfc, result.first_pto_iack);
}

TEST(AckDelayAlt, HonestReportingWouldRecoverIackPto) {
  // If the server honestly reported Δt and the client applied it at init,
  // the WFC PTO would equal the IACK PTO.
  const auto result = EvaluateStrategy(AckDelayStrategy::kApplyAtInit, Scenario(9, 4, 4));
  EXPECT_EQ(result.first_pto_wfc, result.first_pto_iack);
  EXPECT_FALSE(result.clamped_to_min_rtt);
}

TEST(AckDelayAlt, ZeroReportingMakesApplyAtInitUseless) {
  // Reason 2: many servers report 0 (Table 3) — nothing to subtract.
  const auto result = EvaluateStrategy(AckDelayStrategy::kApplyAtInit, Scenario(9, 4, 0));
  EXPECT_EQ(result.first_pto_wfc, FirstPto(sim::Millis(13)));
}

TEST(AckDelayAlt, OverReportedDelayClampsToMinRtt) {
  // Reason 3: CDNs report delays exceeding the RTT (Fig 10); the client may
  // not push the sample below min_rtt.
  const auto result = EvaluateStrategy(AckDelayStrategy::kApplyAtInit, Scenario(9, 4, 50));
  EXPECT_TRUE(result.clamped_to_min_rtt);
  EXPECT_EQ(result.first_pto_wfc, FirstPto(sim::Millis(9)));
}

TEST(AckDelayAlt, ReinitOnSecondSampleHelpsOnlyLater) {
  const auto result = EvaluateStrategy(AckDelayStrategy::kReinitOnSecond, Scenario(9, 4, 0));
  // The PTO that becomes effective from the second exchange equals the IACK
  // one — but the handshake already paid the inflated first PTO.
  EXPECT_EQ(result.first_pto_wfc, result.first_pto_iack);
}

class AckDelayAltSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AckDelayAltSweep, StandardAlwaysInflatedByThreeDelta) {
  const auto [rtt_ms, delta_ms] = GetParam();
  const auto result =
      EvaluateStrategy(AckDelayStrategy::kRfcStandard, Scenario(rtt_ms, delta_ms, 0));
  EXPECT_EQ(result.first_pto_wfc - result.first_pto_iack,
            3 * sim::Millis(delta_ms));
}

INSTANTIATE_TEST_SUITE_P(Grid, AckDelayAltSweep,
                         ::testing::Combine(::testing::Values(1.0, 9.0, 25.0, 100.0),
                                            ::testing::Values(1.0, 4.0, 9.0, 25.0)));

}  // namespace
}  // namespace quicer::core
