// Scenario codec contract: canonical serialization round-trips byte for
// byte, every validation failure carries an actionable path, labels resolve
// against the live spec plus the builtin registries, and the content-hash
// keeps partials of different grid definitions from merging.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"

namespace quicer::core {
namespace {

std::string Replace(std::string text, const std::string& from, const std::string& to) {
  const std::size_t at = text.find(from);
  EXPECT_NE(at, std::string::npos) << "pattern '" << from << "' not found";
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

/// A synthetic spec exercising every serializable dimension: first-class
/// axes, function-valued losses/variants, extras, a multi-mode metric set
/// and a custom runner.
SweepSpec TestSpec() {
  SweepSpec spec;
  spec.name = "synthetic";
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.base.rtt = sim::Millis(9);
  spec.base.certificate_bytes = 5113;
  spec.base.seed = 42;
  spec.axes.clients = {clients::ClientImpl::kQuicGo, clients::ClientImpl::kQuiche};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.rtts = {sim::Millis(1), sim::Millis(9.5)};
  spec.axes.losses = {{"custom-loss", [](const ExperimentConfig&) {
                         return sim::LossPattern().DropIndices(sim::Direction::kServerToClient,
                                                               {2});
                       }}};
  spec.axes.variants = {
      {"tuned", [](ExperimentConfig& c) { c.pad_instant_ack = true; }}};
  spec.axes.extras = {{"day", {{"d0", 0}, {"d1", 1}}}};
  spec.repetitions = 3;
  spec.metrics = {{"m", MetricMode::kSummary, /*exclude_negative=*/false,
                   [](const ExperimentResult&) { return 1.0; }},
                  {"t", MetricMode::kTrace, /*exclude_negative=*/true, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    return std::vector<double>{static_cast<double>(ctx.point.index),
                               static_cast<double>(ctx.repetition)};
  };
  spec.seed_base = 123;
  spec.seed_stride = 7;
  spec.reservoir_capacity = 64;
  return spec;
}

std::string FileFor(const SweepSpec& spec) {
  return ScenarioFileJson({{"synthbench", &spec}});
}

TEST(ScenarioCodec, ExportParseApplyReexportIsByteIdentical) {
  const SweepSpec spec = TestSpec();
  const std::string exported = FileFor(spec);

  std::string error;
  const std::optional<std::vector<Scenario>> scenarios = ParseScenarioFile(exported, &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  ASSERT_EQ(scenarios->size(), 1u);

  SweepSpec applied = TestSpec();
  ASSERT_TRUE(ApplyScenario(scenarios->front(), applied, &error)) << error;
  EXPECT_EQ(FileFor(applied), exported);
  EXPECT_EQ(ScenarioHash(applied), ScenarioHash(spec));
}

TEST(ScenarioCodec, ParsePreservesExactValues) {
  std::string error;
  const std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  const Scenario& s = scenarios->front();
  EXPECT_EQ(s.bench, "synthbench");
  EXPECT_EQ(s.sweep, "synthetic");
  EXPECT_EQ(s.repetitions, 3);
  EXPECT_EQ(s.seed_base, 123u);
  EXPECT_EQ(s.seed_stride, 7u);
  EXPECT_EQ(s.reservoir_capacity, 64u);
  EXPECT_EQ(s.base.client, clients::ClientImpl::kNgtcp2);
  EXPECT_EQ(s.base.rtt, sim::Millis(9));
  EXPECT_EQ(s.base.certificate_bytes, 5113u);
  EXPECT_EQ(s.base.seed, 42u);
  ASSERT_EQ(s.rtts.size(), 2u);
  EXPECT_EQ(s.rtts[0], sim::Millis(1));
  EXPECT_EQ(s.rtts[1], sim::Millis(9.5));  // 9500 ticks, exactly
  ASSERT_EQ(s.losses.size(), 1u);
  EXPECT_EQ(s.losses[0], "custom-loss");
  ASSERT_EQ(s.variants.size(), 1u);
  EXPECT_EQ(s.variants[0], "tuned");
  ASSERT_EQ(s.extras.size(), 1u);
  EXPECT_EQ(s.extras[0].name, "day");
  ASSERT_EQ(s.metrics.size(), 2u);
  EXPECT_EQ(s.metrics[0].name, "m");
  EXPECT_FALSE(s.metrics[0].exclude_negative);
  EXPECT_EQ(s.metrics[1].mode, MetricMode::kTrace);
}

TEST(ScenarioCodec, ApplyResolvesFunctionsFromTheLiveSpec) {
  std::string error;
  const std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  SweepSpec applied = TestSpec();
  ASSERT_TRUE(ApplyScenario(scenarios->front(), applied, &error)) << error;
  ASSERT_EQ(applied.axes.losses.size(), 1u);
  EXPECT_TRUE(static_cast<bool>(applied.axes.losses[0].make));
  ASSERT_EQ(applied.axes.variants.size(), 1u);
  ASSERT_TRUE(static_cast<bool>(applied.axes.variants[0].mutate));
  ExperimentConfig probe;
  applied.axes.variants[0].mutate(probe);
  EXPECT_TRUE(probe.pad_instant_ack);
  ASSERT_EQ(applied.metrics.size(), 2u);
  EXPECT_TRUE(static_cast<bool>(applied.metrics[0].extract));
}

TEST(ScenarioCodec, UnknownFieldsRejectedWithPath) {
  std::string error;
  EXPECT_FALSE(ParseScenarioFile(
                   R"({"format": "quicer-scenario-v1", "scenarios": [{"sweep": "s", "bogus": 1}]})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("scenarios[0]"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;

  const std::string bad_base =
      Replace(FileFor(TestSpec()), "\"cert_cached\"", "\"cert_cashed\"");
  EXPECT_FALSE(ParseScenarioFile(bad_base, &error).has_value());
  EXPECT_NE(error.find("cert_cashed"), std::string::npos) << error;
  EXPECT_NE(error.find("known:"), std::string::npos) << error;

  const std::string bad_axis = Replace(FileFor(TestSpec()), "\"rtts_ms\"", "\"rtt_ms\"");
  EXPECT_FALSE(ParseScenarioFile(bad_axis, &error).has_value());
  EXPECT_NE(error.find("unknown axis"), std::string::npos) << error;
}

TEST(ScenarioCodec, BadEnumLabelsRejectedWithValidList) {
  std::string error;
  const std::string bad_client = Replace(FileFor(TestSpec()), "\"quic-go\"", "\"quik-go\"");
  EXPECT_FALSE(ParseScenarioFile(bad_client, &error).has_value());
  EXPECT_NE(error.find("quik-go"), std::string::npos) << error;
  EXPECT_NE(error.find("valid:"), std::string::npos) << error;
  EXPECT_NE(error.find("picoquic"), std::string::npos) << error;

  const std::string bad_mode =
      Replace(FileFor(TestSpec()), "\"mode\": \"1-RTT\"", "\"mode\": \"2-RTT\"");
  EXPECT_FALSE(ParseScenarioFile(bad_mode, &error).has_value());
  EXPECT_NE(error.find("handshake mode"), std::string::npos) << error;
}

TEST(ScenarioCodec, OutOfRangeValuesRejected) {
  std::string error;
  const std::string zero_reps =
      Replace(FileFor(TestSpec()), "\"repetitions\": 3", "\"repetitions\": 0");
  EXPECT_FALSE(ParseScenarioFile(zero_reps, &error).has_value());
  EXPECT_NE(error.find("repetitions"), std::string::npos) << error;

  const std::string negative_rtt =
      Replace(FileFor(TestSpec()), "\"rtts_ms\": [1, 9.5]", "\"rtts_ms\": [1, -9.5]");
  EXPECT_FALSE(ParseScenarioFile(negative_rtt, &error).has_value());
  EXPECT_NE(error.find("rtts_ms[1]"), std::string::npos) << error;

  const std::string zero_bandwidth =
      Replace(FileFor(TestSpec()), "\"bandwidth_bps\": 10000000", "\"bandwidth_bps\": 0");
  EXPECT_FALSE(ParseScenarioFile(zero_bandwidth, &error).has_value());
  EXPECT_NE(error.find("bandwidth"), std::string::npos) << error;

  const std::string fractional_cert = Replace(
      FileFor(TestSpec()), "\"certificate_bytes\": 5113", "\"certificate_bytes\": 51.3");
  EXPECT_FALSE(ParseScenarioFile(fractional_cert, &error).has_value());
  EXPECT_NE(error.find("integer"), std::string::npos) << error;
}

TEST(ScenarioCodec, SeedsAreFullRangeUint64Strings) {
  std::string error;
  const std::string big_seed = Replace(FileFor(TestSpec()), "\"seed\": \"42\"",
                                       "\"seed\": \"18446744073709551615\"");
  const std::optional<std::vector<Scenario>> scenarios = ParseScenarioFile(big_seed, &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  EXPECT_EQ(scenarios->front().base.seed, 18446744073709551615ull);

  const std::string numeric_seed =
      Replace(FileFor(TestSpec()), "\"seed\": \"42\"", "\"seed\": 42");
  EXPECT_FALSE(ParseScenarioFile(numeric_seed, &error).has_value());
  EXPECT_NE(error.find("decimal string"), std::string::npos) << error;
}

TEST(ScenarioCodec, FormatMarkerRequired) {
  std::string error;
  EXPECT_FALSE(
      ParseScenarioFile(R"({"format": "nope", "scenarios": []})", &error).has_value());
  EXPECT_NE(error.find("not a scenario file"), std::string::npos) << error;
}

TEST(ScenarioCodec, UnknownLossLabelFailsApplyWithKnownList) {
  std::string error;
  std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  Scenario scenario = scenarios->front();
  scenario.losses = {"no-such-loss"};
  SweepSpec applied = TestSpec();
  EXPECT_FALSE(ApplyScenario(scenario, applied, &error));
  EXPECT_NE(error.find("no-such-loss"), std::string::npos) << error;
  EXPECT_NE(error.find("custom-loss"), std::string::npos) << error;
  EXPECT_NE(error.find("first-server-flight-tail"), std::string::npos) << error;
}

TEST(ScenarioCodec, BuiltinLossesResolveWithoutAHostEntry) {
  std::string error;
  std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  Scenario scenario = scenarios->front();
  scenario.losses = {"none", "first-server-flight-tail", "second-client-flight"};
  SweepSpec applied = TestSpec();
  ASSERT_TRUE(ApplyScenario(scenario, applied, &error)) << error;
  ASSERT_EQ(applied.axes.losses.size(), 3u);
  EXPECT_FALSE(static_cast<bool>(applied.axes.losses[0].make));  // "none" keeps base
  EXPECT_TRUE(static_cast<bool>(applied.axes.losses[1].make));
  EXPECT_TRUE(static_cast<bool>(applied.axes.losses[2].make));
}

TEST(ScenarioCodec, UnknownVariantFailsApply) {
  std::string error;
  std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  Scenario scenario = scenarios->front();
  scenario.variants = {"tuned", "base", "mystery"};
  SweepSpec applied = TestSpec();
  EXPECT_FALSE(ApplyScenario(scenario, applied, &error));
  EXPECT_NE(error.find("mystery"), std::string::npos) << error;

  scenario.variants = {"base", "tuned"};
  ASSERT_TRUE(ApplyScenario(scenario, applied, &error)) << error;
  ASSERT_EQ(applied.axes.variants.size(), 2u);
  EXPECT_FALSE(static_cast<bool>(applied.axes.variants[0].mutate));  // "base" no-op
}

TEST(ScenarioCodec, UnknownMetricNeedsACustomRunner) {
  std::string error;
  std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  Scenario scenario = scenarios->front();
  scenario.metrics = {{"invented", MetricMode::kSummary, true}};

  SweepSpec with_runner = TestSpec();
  ASSERT_TRUE(ApplyScenario(scenario, with_runner, &error)) << error;

  SweepSpec without_runner = TestSpec();
  without_runner.runner = nullptr;
  EXPECT_FALSE(ApplyScenario(scenario, without_runner, &error));
  EXPECT_NE(error.find("invented"), std::string::npos) << error;
  EXPECT_NE(error.find("ttfb_ms"), std::string::npos) << error;

  // The builtin extractors serve the default runner.
  scenario.metrics = {{"response_ttfb_ms", MetricMode::kSummary, true}};
  ASSERT_TRUE(ApplyScenario(scenario, without_runner, &error)) << error;
  ASSERT_EQ(without_runner.metrics.size(), 1u);
  EXPECT_TRUE(static_cast<bool>(without_runner.metrics[0].extract));
}

TEST(ScenarioCodec, WrongSweepNameFailsApply) {
  std::string error;
  std::optional<std::vector<Scenario>> scenarios =
      ParseScenarioFile(FileFor(TestSpec()), &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  SweepSpec other = TestSpec();
  other.name = "different";
  EXPECT_FALSE(ApplyScenario(scenarios->front(), other, &error));
  EXPECT_NE(error.find("different"), std::string::npos) << error;
}

TEST(ScenarioHashing, DataChangesChangeTheHash) {
  const SweepSpec spec = TestSpec();
  const std::uint64_t base = ScenarioHash(spec);
  EXPECT_EQ(ScenarioHash(TestSpec()), base) << "hash must be deterministic";

  SweepSpec axis = TestSpec();
  axis.axes.rtts.push_back(sim::Millis(50));
  EXPECT_NE(ScenarioHash(axis), base);

  SweepSpec config = TestSpec();
  config.base.bandwidth_bps = 5e6;
  EXPECT_NE(ScenarioHash(config), base);

  // Execution control is not data: shard layout must not move the hash.
  SweepSpec sharded = TestSpec();
  sharded.shard.index = 1;
  sharded.shard.count = 4;
  sharded.only_sweep = "synthetic";
  sharded.export_only = true;
  EXPECT_EQ(ScenarioHash(sharded), base);
}

TEST(ScenarioHashing, RunSweepStampsTheHashAndMergeEnforcesIt) {
  SweepSpec spec = TestSpec();
  spec.shard.index = 0;
  spec.shard.count = 2;
  const SweepResult left = RunSweep(spec);
  EXPECT_EQ(left.spec_hash, ScenarioHash(spec));

  // The sibling shard of a *different* grid definition: same name, same
  // grid shape, same seeds — only the content-hash can tell them apart.
  SweepSpec other = TestSpec();
  other.base.bandwidth_bps = 5e6;
  other.shard.index = 1;
  other.shard.count = 2;
  const SweepResult right = RunSweep(other);

  std::string error;
  EXPECT_FALSE(MergeSweepResults({left, right}, &error).has_value());
  EXPECT_NE(error.find("content-hash mismatch"), std::string::npos) << error;

  // Matching definitions merge fine.
  SweepSpec sibling = TestSpec();
  sibling.shard.index = 1;
  sibling.shard.count = 2;
  const SweepResult ok = RunSweep(sibling);
  std::optional<SweepResult> merged = MergeSweepResults({left, ok}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->spec_hash, left.spec_hash);
}

TEST(ScenarioHashing, PartialFilesCarryTheHash) {
  SweepSpec spec = TestSpec();
  spec.shard.index = 0;
  spec.shard.count = 2;
  const SweepResult result = RunSweep(spec);
  ASSERT_NE(result.spec_hash, 0u);
  std::string error;
  const std::optional<SweepResult> parsed =
      ParseSweepPartialJson(SweepPartialJson(result), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->spec_hash, result.spec_hash);
}

TEST(ScenarioSchema, MarkdownListsEveryDescriptorField) {
  const std::string markdown = ScenarioSchemaMarkdown();
  for (const ConfigFieldSpec& field : ConfigFields()) {
    EXPECT_NE(markdown.find("`" + field.name + "`"), std::string::npos) << field.name;
  }
  EXPECT_NE(markdown.find("| field | type | default | description |"), std::string::npos);
}

}  // namespace
}  // namespace quicer::core
