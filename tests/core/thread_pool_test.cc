#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace quicer::core {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelismCapOfOneStillCompletes) {
  ThreadPool pool(4);
  std::vector<int> out(64, 0);
  pool.ParallelFor(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); },
                   /*max_parallelism=*/1);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPool, CapAbovePoolSizeWorks) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); },
                   /*max_parallelism=*/64);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A pool task that itself fans out must make progress even when every
  // worker is occupied: the calling lane participates in its own loop.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, SubmitExecutesDetachedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { done.fetch_add(1); });
    // Destructor drains remaining tasks before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsPersistent) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  const std::uint64_t before = a.tasks_executed();
  std::atomic<int> sum{0};
  a.ParallelFor(10, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 10);
  EXPECT_GE(a.tasks_executed(), before);
}

}  // namespace
}  // namespace quicer::core
