#include "core/loss_scenarios.h"

#include <gtest/gtest.h>

namespace quicer::core {
namespace {

TEST(LossScenarios, SmallCertFlightIsTwoDatagrams) {
  EXPECT_EQ(ServerFlightDatagrams(tls::kSmallCertificateBytes, http::Version::kHttp1), 2);
  EXPECT_EQ(ServerFlightDatagrams(tls::kSmallCertificateBytes, http::Version::kHttp3), 2);
}

TEST(LossScenarios, LargeCertFlightIsLonger) {
  EXPECT_GE(ServerFlightDatagrams(tls::kLargeCertificateBytes, http::Version::kHttp1), 5);
}

TEST(LossScenarios, Fig6WfcDropsDatagramTwo) {
  // "loss of packet 2 (WFC)" — the flight tail after the coalesced ACK+SH.
  sim::Rng rng(1);
  const auto pattern = FirstServerFlightTailLoss(quic::ServerBehavior::kWaitForCertificate,
                                                 tls::kSmallCertificateBytes,
                                                 http::Version::kHttp1);
  EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kServerToClient, 1, rng));
  EXPECT_TRUE(pattern.ShouldDrop(sim::Direction::kServerToClient, 2, rng));
  EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kServerToClient, 3, rng));
  EXPECT_EQ(pattern.IndexedDropCount(sim::Direction::kServerToClient), 1u);
}

TEST(LossScenarios, Fig6IackDropsDatagramsTwoAndThree) {
  // "loss of packets 2 and 3 (IACK)" — datagram 1 is the instant ACK.
  sim::Rng rng(1);
  const auto pattern = FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                                 tls::kSmallCertificateBytes,
                                                 http::Version::kHttp1);
  EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kServerToClient, 1, rng));
  EXPECT_TRUE(pattern.ShouldDrop(sim::Direction::kServerToClient, 2, rng));
  EXPECT_TRUE(pattern.ShouldDrop(sim::Direction::kServerToClient, 3, rng));
  EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kServerToClient, 4, rng));
}

TEST(LossScenarios, SecondClientFlightFollowsTable4) {
  sim::Rng rng(1);
  for (clients::ClientImpl impl : clients::kAllClients) {
    const auto pattern = SecondClientFlightLoss(impl);
    const int flight = clients::SecondFlightDatagrams(impl);
    EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kClientToServer, 1, rng))
        << clients::Name(impl) << ": the ClientHello must survive";
    for (int i = 2; i <= 1 + flight; ++i) {
      EXPECT_TRUE(pattern.ShouldDrop(sim::Direction::kClientToServer,
                                     static_cast<std::uint64_t>(i), rng))
          << clients::Name(impl) << " datagram " << i;
    }
    EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kClientToServer,
                                    static_cast<std::uint64_t>(flight + 2), rng))
        << clients::Name(impl);
  }
}

TEST(LossScenarios, QuicheSingleDatagramFlight) {
  sim::Rng rng(1);
  const auto pattern = SecondClientFlightLoss(clients::ClientImpl::kQuiche);
  EXPECT_EQ(pattern.IndexedDropCount(sim::Direction::kClientToServer), 1u);
  EXPECT_TRUE(pattern.ShouldDrop(sim::Direction::kClientToServer, 2, rng));
}

TEST(LossScenarios, PicoquicFourDatagramFlight) {
  const auto pattern = SecondClientFlightLoss(clients::ClientImpl::kPicoquic);
  EXPECT_EQ(pattern.IndexedDropCount(sim::Direction::kClientToServer), 4u);
}

TEST(LossScenarios, ServerSideLossDoesNotTouchClientDirection) {
  sim::Rng rng(1);
  const auto pattern = FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                                 tls::kSmallCertificateBytes,
                                                 http::Version::kHttp1);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_FALSE(pattern.ShouldDrop(sim::Direction::kClientToServer, i, rng));
  }
}

}  // namespace
}  // namespace quicer::core
