#include "core/report.h"

#include <gtest/gtest.h>

namespace quicer::core {
namespace {

TEST(Report, FormatMs) {
  EXPECT_EQ(FormatMs(sim::Millis(9.0)), "9.0");
  EXPECT_EQ(FormatMs(sim::Millis(123.46)), "123.5");
}

TEST(Report, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
}

TEST(Report, ScatterEmptyIsBlank) {
  const std::string strip = RenderScatter({}, 0, 100, 20);
  EXPECT_EQ(strip, std::string(20, ' '));
}

TEST(Report, ScatterMarksMedian) {
  const std::string strip = RenderScatter({50, 50, 50}, 0, 100, 21);
  EXPECT_EQ(strip[10], '|');
}

TEST(Report, ScatterClampsOutOfRangeValues) {
  const std::string strip = RenderScatter({-100, 500}, 0, 100, 10);
  EXPECT_NE(strip[0], ' ');
  EXPECT_NE(strip[9], ' ');
}

TEST(Report, ScatterDensityLevels) {
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(10.0);
  values.push_back(90.0);
  const std::string strip = RenderScatter(values, 0, 100, 10);
  // Heavy stack at the left, light dot to the right (90/100 -> cell 8 of 10).
  EXPECT_TRUE(strip[1] == '#' || strip[1] == '|' || strip[0] == '#' || strip[0] == '|');
  EXPECT_EQ(strip[8], '.');
}

TEST(Report, ScatterDegenerateRange) {
  const std::string strip = RenderScatter({5.0}, 10, 10, 10);
  EXPECT_EQ(strip, std::string(10, ' '));
}

}  // namespace
}  // namespace quicer::core
