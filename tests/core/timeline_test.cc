// Timeline utility tests + Fig 3 conformance: the engine's lossless 1-RTT
// handshake must follow the paper's packet choreography.
#include "core/timeline.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::core {
namespace {

std::vector<TimelineEntry> RunAndBuild(quic::ServerBehavior behavior,
                                       sim::Duration delta = sim::Millis(20)) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = behavior;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = delta;
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 4096;
  std::vector<TimelineEntry> timeline;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection& server) {
    timeline = BuildTimeline(client.trace(), server.trace());
  });
  return timeline;
}

TEST(Timeline, ChronologicallyOrdered) {
  const auto timeline = RunAndBuild(quic::ServerBehavior::kWaitForCertificate);
  ASSERT_FALSE(timeline.empty());
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GE(timeline[i].time, timeline[i - 1].time);
  }
}

TEST(Timeline, FirstEventIsClientHello) {
  const auto timeline = RunAndBuild(quic::ServerBehavior::kWaitForCertificate);
  ASSERT_FALSE(timeline.empty());
  const TimelineEntry& first = timeline.front();
  EXPECT_EQ(first.actor, "client");
  EXPECT_EQ(first.kind, "send");
  EXPECT_EQ(first.space, quic::PacketNumberSpace::kInitial);
  EXPECT_GE(first.size, quic::kMinInitialDatagramSize);
}

TEST(Timeline, Fig3WfcChoreography) {
  // WFC: client CH -> server first flight (Initial ACK+SH coalesced with
  // Handshake) -> client second flight (Initial ACK, HS FIN, 1-RTT request)
  // -> server second flight (HANDSHAKE_DONE + response).
  const auto timeline = RunAndBuild(quic::ServerBehavior::kWaitForCertificate);
  const auto server_sends = SendsOf(timeline, "server");
  ASSERT_GE(server_sends.size(), 3u);
  // The server's first packet is the coalesced Initial (ACK+SH) — it is
  // ack-eliciting (CRYPTO) and precedes any server Handshake packet.
  EXPECT_EQ(server_sends[0].space, quic::PacketNumberSpace::kInitial);
  EXPECT_TRUE(server_sends[0].ack_eliciting);
  EXPECT_EQ(server_sends[1].space, quic::PacketNumberSpace::kHandshake);

  const auto client_sends = SendsOf(timeline, "client");
  ASSERT_GE(client_sends.size(), 4u);
  // Flight 2: Initial ACK (non-eliciting), then HS (FIN), then 1-RTT.
  EXPECT_EQ(client_sends[1].space, quic::PacketNumberSpace::kInitial);
  EXPECT_FALSE(client_sends[1].ack_eliciting);
  bool saw_hs = false;
  bool saw_app_after_hs = false;
  for (std::size_t i = 2; i < client_sends.size(); ++i) {
    if (client_sends[i].space == quic::PacketNumberSpace::kHandshake) saw_hs = true;
    if (saw_hs && client_sends[i].space == quic::PacketNumberSpace::kAppData) {
      saw_app_after_hs = true;
      break;
    }
  }
  EXPECT_TRUE(saw_hs);
  EXPECT_TRUE(saw_app_after_hs);
}

TEST(Timeline, Fig3IackChoreography) {
  // IACK: the server's first send is a standalone non-eliciting Initial ACK,
  // Δt before the ServerHello flight.
  const auto timeline = RunAndBuild(quic::ServerBehavior::kInstantAck);
  const auto server_sends = SendsOf(timeline, "server");
  ASSERT_GE(server_sends.size(), 3u);
  EXPECT_EQ(server_sends[0].space, quic::PacketNumberSpace::kInitial);
  EXPECT_FALSE(server_sends[0].ack_eliciting);
  EXPECT_LT(server_sends[0].size, 100u);
  // The SH flight follows at least Δt later.
  EXPECT_GE(server_sends[1].time - server_sends[0].time, sim::Millis(20));
}

TEST(Timeline, RenderContainsKeyEvents) {
  const auto timeline = RunAndBuild(quic::ServerBehavior::kInstantAck);
  const std::string text = RenderTimeline(timeline);
  EXPECT_NE(text.find("client"), std::string::npos);
  EXPECT_NE(text.find("server"), std::string::npos);
  EXPECT_NE(text.find("Initial"), std::string::npos);
  EXPECT_NE(text.find("1-RTT"), std::string::npos);
  EXPECT_NE(text.find("instant ACK sent"), std::string::npos);
  EXPECT_NE(text.find("[non-eliciting]"), std::string::npos);
}

TEST(Timeline, NotesInterleaved) {
  const auto timeline = RunAndBuild(quic::ServerBehavior::kInstantAck);
  bool found_note = false;
  for (const TimelineEntry& entry : timeline) {
    if (entry.kind == "note" && entry.detail.find("certificate ready") != std::string::npos) {
      found_note = true;
    }
  }
  EXPECT_TRUE(found_note);
}

}  // namespace
}  // namespace quicer::core
