// Edge cases of the minimal JSON parser behind the sweep partial-result
// files: escapes, nesting limits, truncated input, duplicate keys — and a
// partial-file round trip that includes budget-skipped points, the shape a
// clipped distributed run hands to the merge phase.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.h"
#include "core/sweep.h"
#include "core/sweep_partial.h"

namespace quicer::core {
namespace {

std::optional<JsonValue> Parse(const std::string& text, std::string* error = nullptr) {
  return JsonValue::Parse(text, error);
}

TEST(JsonParser, StringEscapes) {
  const std::optional<JsonValue> parsed =
      Parse(R"({"s": "quote:\" back:\\ slash:\/ nl:\n tab:\t cr:\r bs:\b ff:\f"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetString("s"),
            "quote:\" back:\\ slash:/ nl:\n tab:\t cr:\r bs:\b ff:\f");

  // \uXXXX is deliberately unsupported (machine-written documents never
  // emit it); the parser must reject it rather than mangle it.
  std::string error;
  EXPECT_FALSE(Parse("{\"s\": \"\\u0041\"}", &error).has_value());
  EXPECT_NE(error.find("unsupported escape"), std::string::npos);
  EXPECT_FALSE(Parse("\"\\x41\"").has_value());

  // A backslash at end-of-input is an unterminated string, not a crash.
  EXPECT_FALSE(Parse("\"abc\\").has_value());
}

TEST(JsonParser, WriterEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te";
  const std::optional<JsonValue> parsed = Parse("\"" + JsonEscape(nasty) + "\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), nasty);
}

TEST(JsonParser, DeeplyNestedValuesAreBoundedNotFatal) {
  auto nested = [](int depth) {
    std::string doc(depth, '[');
    doc += "1";
    doc += std::string(depth, ']');
    return doc;
  };
  // Comfortably within the depth bound.
  std::optional<JsonValue> ok = Parse(nested(60));
  ASSERT_TRUE(ok.has_value());
  const JsonValue* cursor = &*ok;
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(cursor->Items().size(), 1u);
    cursor = &cursor->Items()[0];
  }
  EXPECT_EQ(cursor->AsNumber(), 1.0);

  // Past the bound: a clean error, not a stack overflow.
  std::string error;
  EXPECT_FALSE(Parse(nested(100), &error).has_value());
  EXPECT_NE(error.find("too deep"), std::string::npos);

  // Mixed object/array nesting counts too.
  std::string mixed;
  for (int i = 0; i < 50; ++i) mixed += "{\"k\": [";
  mixed += "null";
  for (int i = 0; i < 50; ++i) mixed += "]}";
  EXPECT_FALSE(Parse(mixed).has_value());
}

TEST(JsonParser, TruncatedInputFailsCleanly) {
  for (const char* doc : {"", "{", "[", "{\"a\"", "{\"a\":", "{\"a\": 1", "{\"a\": 1,",
                          "[1, 2", "[1,", "\"abc", "tru", "fals", "nul", "-", "{\"a\": }",
                          "[1 2]", "{\"a\" 1}", "{,}", "[,]"}) {
    std::string error;
    EXPECT_FALSE(Parse(doc, &error).has_value()) << "'" << doc << "'";
    EXPECT_FALSE(error.empty()) << "'" << doc << "'";
  }
}

TEST(JsonParser, DuplicateKeysKeepDocumentOrderAndGetReturnsTheFirst) {
  const std::optional<JsonValue> parsed = Parse(R"({"a": 1, "b": 2, "a": 3})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Members().size(), 3u);
  EXPECT_EQ(parsed->GetNumber("a"), 1.0);
  EXPECT_EQ(parsed->Members()[2].second.AsNumber(), 3.0);
}

TEST(JsonParser, NumbersAndLiterals) {
  const std::optional<JsonValue> parsed =
      Parse(R"([0, -0.5, 3e2, 2.5e-3, 1e15, true, false, null])");
  ASSERT_TRUE(parsed.has_value());
  const auto& items = parsed->Items();
  ASSERT_EQ(items.size(), 8u);
  EXPECT_EQ(items[0].AsNumber(), 0.0);
  EXPECT_EQ(items[1].AsNumber(), -0.5);
  EXPECT_EQ(items[2].AsNumber(), 300.0);
  EXPECT_EQ(items[3].AsNumber(), 0.0025);
  EXPECT_EQ(items[4].AsNumber(), 1e15);
  EXPECT_TRUE(items[5].AsBool());
  EXPECT_FALSE(items[6].AsBool(true));
  EXPECT_TRUE(items[7].is_null());

  // Type-mismatch accessors fall back instead of failing.
  EXPECT_EQ(items[5].AsNumber(-1.0), -1.0);
  EXPECT_EQ(items[0].AsString(), "");
  EXPECT_TRUE(items[0].Items().empty());
  EXPECT_EQ(items[0].Get("missing"), nullptr);
}

/// A tiny synthetic spec for the partial-file round trip.
SweepSpec BudgetSpec() {
  SweepSpec spec;
  spec.name = "json_budget_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}}}};
  spec.repetitions = 3;
  spec.metrics = {{"v", MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    return std::vector<double>{static_cast<double>(ctx.point.Extra("k")->value) * 10.0 +
                               ctx.repetition};
  };
  return spec;
}

// A budget-clipped run's partial file lists its skipped points and round
// trips through disk with every flag intact; re-running exactly those
// points merges back to the full result.
TEST(JsonParser, PartialFileRoundTripIncludesBudgetSkippedPoints) {
  SweepSpec clipped_spec = BudgetSpec();
  clipped_spec.time_budget_seconds = 1e-9;  // expires before any point starts
  const SweepResult clipped = RunSweep(clipped_spec);
  const std::vector<std::size_t> skipped = clipped.BudgetSkippedPoints();
  ASSERT_EQ(skipped.size(), 4u);

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(WriteSweepData(clipped, dir));
  const std::string path = dir + "/" + SweepPartialFileName(clipped);

  std::string error;
  const std::optional<SweepResult> reread = ReadSweepPartialFile(path, &error);
  std::remove(path.c_str());
  ASSERT_TRUE(reread.has_value()) << error;
  EXPECT_EQ(reread->name, clipped.name);
  EXPECT_EQ(reread->BudgetSkippedPoints(), skipped);
  for (const PointSummary& summary : reread->points) {
    EXPECT_TRUE(summary.budget_skipped);
    EXPECT_FALSE(summary.executed);
  }

  SweepSpec rerun_spec = BudgetSpec();
  rerun_spec.shard.points = skipped;
  std::optional<SweepResult> rerun =
      ParseSweepPartialJson(SweepPartialJson(RunSweep(rerun_spec)), &error);
  ASSERT_TRUE(rerun.has_value()) << error;
  const std::optional<SweepResult> merged = MergeSweepResults({*reread, *rerun}, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(SweepResultJson(*merged), SweepResultJson(RunSweep(BudgetSpec())));
}

TEST(JsonParser, PartialDocumentRejectsWrongShapes) {
  std::string error;
  EXPECT_FALSE(ParseSweepPartialJson("{}", &error).has_value());
  EXPECT_NE(error.find("format"), std::string::npos);
  EXPECT_FALSE(ParseSweepPartialJson("[1, 2]", &error).has_value());
  EXPECT_FALSE(
      ParseSweepPartialJson(R"({"format": "quicer-sweep-partial-v1"})", &error).has_value());
  EXPECT_NE(error.find("points"), std::string::npos);
}

}  // namespace
}  // namespace quicer::core
