#include "core/advisor.h"

#include <gtest/gtest.h>

#include "tls/messages.h"

namespace quicer::core {
namespace {

DeploymentScenario SmallCert() {
  DeploymentScenario scenario;
  scenario.certificate_bytes = tls::kSmallCertificateBytes;
  scenario.client_frontend_rtt = sim::Millis(9);
  return scenario;
}

DeploymentScenario LargeCert() {
  DeploymentScenario scenario = SmallCert();
  scenario.certificate_bytes = tls::kLargeCertificateBytes;
  return scenario;
}

TEST(Advisor, LargeCertAlwaysIack) {
  // Table 2 row (2): every column says IACK.
  for (LossCase loss : {LossCase::kNoLoss, LossCase::kFirstServerFlightTail,
                        LossCase::kSecondClientFlight}) {
    for (sim::Duration delta : {sim::Millis(1), sim::Millis(500)}) {
      DeploymentScenario scenario = LargeCert();
      scenario.loss = loss;
      scenario.frontend_cert_delay = delta;
      EXPECT_EQ(Advise(scenario), Recommendation::kIack) << ToString(loss);
    }
  }
}

TEST(Advisor, SmallCertServerFlightLossPrefersWfc) {
  DeploymentScenario scenario = SmallCert();
  scenario.loss = LossCase::kFirstServerFlightTail;
  EXPECT_EQ(Advise(scenario), Recommendation::kWfc);
}

TEST(Advisor, SmallCertClientFlightLossPrefersIack) {
  DeploymentScenario scenario = SmallCert();
  scenario.loss = LossCase::kSecondClientFlight;
  EXPECT_EQ(Advise(scenario), Recommendation::kIack);
}

TEST(Advisor, NoLossDependsOnDeltaVsClientPto) {
  DeploymentScenario scenario = SmallCert();
  scenario.loss = LossCase::kNoLoss;
  scenario.frontend_cert_delay = sim::Millis(20);  // < 3 x 9 ms
  EXPECT_EQ(Advise(scenario), Recommendation::kIack);
  scenario.frontend_cert_delay = sim::Millis(40);  // > 27 ms
  EXPECT_EQ(Advise(scenario), Recommendation::kWfc);
}

TEST(Advisor, CertificateLimitCheck) {
  EXPECT_FALSE(CertificateExceedsAmplificationLimit(SmallCert()));
  EXPECT_TRUE(CertificateExceedsAmplificationLimit(LargeCert()));
}

TEST(Advisor, DeltaWithinPtoBoundary) {
  DeploymentScenario scenario = SmallCert();
  scenario.frontend_cert_delay = sim::Millis(27);
  EXPECT_TRUE(DeltaWithinClientPto(scenario));
  scenario.frontend_cert_delay = sim::Millis(28);
  EXPECT_FALSE(DeltaWithinClientPto(scenario));
}

TEST(Advisor, ToStringRoundTrips) {
  EXPECT_EQ(ToString(Recommendation::kWfc), "WFC");
  EXPECT_EQ(ToString(Recommendation::kIack), "IACK");
  EXPECT_EQ(ToString(LossCase::kNoLoss), "no loss");
}

}  // namespace
}  // namespace quicer::core
