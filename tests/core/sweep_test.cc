#include "core/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/csv.h"
#include "core/loss_scenarios.h"

namespace quicer::core {
namespace {

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.name = "test_sweep";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = 4096;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.rtts = {sim::Millis(5), sim::Millis(20)};
  spec.repetitions = 6;
  return spec;
}

TEST(Sweep, EnumerateBuildsFullGridInDocumentedOrder) {
  SweepSpec spec = SmallSpec();
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 4u);  // 2 RTTs x 2 behaviors
  // Outermost-to-innermost: ... RTT, mode, client, behavior.
  EXPECT_EQ(points[0].rtt_ms, 5.0);
  EXPECT_EQ(points[0].behavior, "WFC");
  EXPECT_EQ(points[1].rtt_ms, 5.0);
  EXPECT_EQ(points[1].behavior, "IACK");
  EXPECT_EQ(points[2].rtt_ms, 20.0);
  EXPECT_EQ(points[3].rtt_ms, 20.0);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
}

TEST(Sweep, EmptyAxesYieldSingleBasePoint) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.repetitions = 1;
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].client, "ngtcp2");
  EXPECT_EQ(points[0].loss, "none");
  EXPECT_EQ(points[0].variant, "base");
  EXPECT_TRUE(points[0].extras.empty());
  EXPECT_EQ(points[0].ExtrasLabel(), "");
}

TEST(Sweep, SkipsUnsupportedHttp3Clients) {
  SweepSpec spec;
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  const auto points = Enumerate(spec);
  // 8 clients on HTTP/1.1, 7 on HTTP/3 (go-x-net has no HTTP/3 support).
  EXPECT_EQ(points.size(), 15u);
}

TEST(Sweep, ExtrasEnumerateOutermostInDeclarationOrder) {
  SweepSpec spec;
  spec.axes.extras = {{"vantage", {{"A", 0}, {"B", 1}}}, {"day", {{"0", 0}, {"1", 1}, {"2", 2}}}};
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 12u);  // 2 vantages x 3 days x 2 behaviors
  // First axis varies slowest; behaviors innermost.
  EXPECT_EQ(points[0].Extra("vantage")->label, "A");
  EXPECT_EQ(points[0].Extra("day")->label, "0");
  EXPECT_EQ(points[0].behavior, "WFC");
  EXPECT_EQ(points[1].behavior, "IACK");
  EXPECT_EQ(points[2].Extra("day")->label, "1");
  EXPECT_EQ(points[6].Extra("vantage")->label, "B");
  EXPECT_EQ(points[6].Extra("vantage")->value, 1);
  EXPECT_EQ(points[0].ExtrasLabel(), "vantage=A|day=0");
  EXPECT_EQ(points[0].Extra("unknown"), nullptr);
}

TEST(Sweep, EnumerateCountMatchesEnumerate) {
  // The closed-form count backs the grid loader's per-scenario point totals;
  // it must agree with the materialised enumeration for every axis shape.
  std::vector<SweepSpec> specs;
  specs.push_back(SmallSpec());
  specs.emplace_back();  // empty axes: single base point

  SweepSpec filtered;
  filtered.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  filtered.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  specs.push_back(filtered);

  SweepSpec wide = SmallSpec();
  wide.axes.extras = {{"vantage", {{"A", 0}, {"B", 1}}}, {"day", {{"0", 0}, {"1", 1}}}};
  wide.axes.losses.push_back(SweepLoss{"l1", nullptr});
  wide.axes.losses.push_back(SweepLoss{"l2", nullptr});
  wide.axes.variants.push_back(SweepVariant{});
  wide.axes.certificate_sizes = {2500, 5000, 10000};
  specs.push_back(wide);

  SweepSpec h3_base = filtered;
  h3_base.base.http = http::Version::kHttp3;  // base http also hits the filter
  h3_base.axes.http_versions.clear();
  specs.push_back(h3_base);

  for (const SweepSpec& spec : specs) {
    EXPECT_EQ(EnumerateCount(spec), Enumerate(spec).size()) << spec.name;
  }
}

TEST(Sweep, MedianMatchesCollectTtfbMs) {
  SweepSpec spec = SmallSpec();
  const SweepResult result = RunSweep(spec);
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.total_runs, 24u);
  EXPECT_EQ(result.executed_runs, 24u);

  for (const PointSummary& summary : result.points) {
    const auto legacy = CollectTtfbMs(summary.point.config, spec.repetitions);
    ASSERT_EQ(summary.values().count(), legacy.size());
    EXPECT_DOUBLE_EQ(summary.values().Median(), stats::Median(legacy))
        << summary.point.rtt_ms << " " << summary.point.behavior;
  }
}

TEST(Sweep, DeterministicAcrossParallelismCaps) {
  SweepSpec spec = SmallSpec();
  // Per-client loss keyed off the resolved config exercises the loss axis.
  spec.axes.losses = {{"second-client-flight", [](const ExperimentConfig& c) {
                         return SecondClientFlightLoss(c.client);
                       }}};
  spec.metrics = {{"response_ttfb_ms", MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const ExperimentResult& r) { return r.ResponseTtfbMs(); }}};

  const SweepResult serial = RunSweep(spec, /*max_parallelism=*/1);
  for (unsigned cap : {2u, 7u}) {
    const SweepResult parallel = RunSweep(spec, cap);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      const stats::Summary a = serial.points[i].values().Summarize();
      const stats::Summary b = parallel.points[i].values().Summarize();
      EXPECT_EQ(a.count, b.count) << cap;
      EXPECT_DOUBLE_EQ(a.median, b.median) << cap;
      EXPECT_DOUBLE_EQ(a.mean, b.mean) << cap;
      EXPECT_DOUBLE_EQ(a.stddev, b.stddev) << cap;  // fold order is fixed
      EXPECT_EQ(serial.points[i].aborted(), parallel.points[i].aborted()) << cap;
      EXPECT_EQ(serial.points[i].values().samples(), parallel.points[i].values().samples())
          << cap;
    }
  }
}

// Trace-mode vectors must be bit-identical to a serial run for any thread
// count: each repetition's value lands in a slot keyed by its index and the
// trace is folded in repetition order.
TEST(Sweep, TraceDeterministicAcrossParallelismCaps) {
  SweepSpec spec = SmallSpec();
  spec.repetitions = 9;
  spec.metrics = {{"ttfb_ms", MetricMode::kTrace, /*exclude_negative=*/true,
                   [](const ExperimentResult& r) { return r.TtfbMs(); }},
                  {"end_time_ms", MetricMode::kTrace, /*exclude_negative=*/false,
                   [](const ExperimentResult& r) { return sim::ToMillis(r.end_time); }}};

  const SweepResult serial = RunSweep(spec, /*max_parallelism=*/1);
  for (unsigned cap : {2u, 7u}) {
    const SweepResult parallel = RunSweep(spec, cap);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      for (const char* metric : {"ttfb_ms", "end_time_ms"}) {
        const MetricSeries* a = serial.points[i].Metric(metric);
        const MetricSeries* b = parallel.points[i].Metric(metric);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->trace, b->trace) << metric << " cap " << cap;  // bit-identical
      }
    }
  }
}

// A custom runner: no experiments, deterministic values from the context.
TEST(Sweep, CustomRunnerFeedsMetrics) {
  SweepSpec spec;
  spec.name = "runner_test";
  spec.axes.extras = {{"k", {{"ten", 10}, {"twenty", 20}}}};
  spec.repetitions = 4;
  spec.metrics = {{"value", MetricMode::kTrace, /*exclude_negative=*/false, nullptr},
                  {"rep", MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    const double k = static_cast<double>(ctx.point.Extra("k")->value);
    return std::vector<double>{k + ctx.repetition, static_cast<double>(ctx.repetition)};
  };
  const SweepResult result = RunSweep(spec);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.points[0].Metric("value")->trace, (std::vector<double>{10, 11, 12, 13}));
  EXPECT_EQ(result.points[1].Metric("value")->trace, (std::vector<double>{20, 21, 22, 23}));
  EXPECT_DOUBLE_EQ(result.points[0].Metric("rep")->summary.mean(), 1.5);
  const MetricSeries* series =
      result.FindMetric([](const SweepPoint& p) { return p.Extra("k")->value == 20; }, "value");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->trace.front(), 20.0);
}

// Per-metric value semantics: NaN is "no sample" (skipped) in every mode;
// negatives abort only while the metric's exclude_negative is set.
TEST(Sweep, PerMetricExcludeNegativeAndNanSemantics) {
  SweepSpec spec;
  spec.name = "exclusion_test";
  spec.repetitions = 5;
  spec.metrics = {{"excl", MetricMode::kSummary, /*exclude_negative=*/true, nullptr},
                  {"raw", MetricMode::kSummary, /*exclude_negative=*/false, nullptr},
                  {"excl_trace", MetricMode::kTrace, /*exclude_negative=*/true, nullptr}};
  // Repetitions produce: 1, -1, NaN, 4, -5 for every metric.
  spec.runner = [](const SweepRunContext& ctx) {
    const double values[] = {1.0, -1.0, NoSample(), 4.0, -5.0};
    const double v = values[ctx.repetition];
    return std::vector<double>{v, v, v};
  };
  const SweepResult result = RunSweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  const PointSummary& point = result.points[0];

  const MetricSeries* excl = point.Metric("excl");
  EXPECT_EQ(excl->count(), 2u);    // 1 and 4
  EXPECT_EQ(excl->aborted, 2u);    // -1 and -5
  EXPECT_EQ(excl->skipped, 1u);    // NaN
  EXPECT_DOUBLE_EQ(excl->Median(), 2.5);

  const MetricSeries* raw = point.Metric("raw");
  EXPECT_EQ(raw->count(), 4u);  // negatives are data
  EXPECT_EQ(raw->aborted, 0u);
  EXPECT_EQ(raw->skipped, 1u);
  EXPECT_DOUBLE_EQ(raw->summary.min(), -5.0);

  const MetricSeries* excl_trace = point.Metric("excl_trace");
  EXPECT_EQ(excl_trace->trace, (std::vector<double>{1.0, 4.0}));  // repetition order
  EXPECT_EQ(excl_trace->aborted, 2u);
  EXPECT_EQ(excl_trace->skipped, 1u);
  EXPECT_DOUBLE_EQ(excl_trace->MedianOrNegative(), 2.5);
}

TEST(Sweep, DefaultMetricIsTtfbWithExcludedNegatives) {
  SweepSpec spec = SmallSpec();
  spec.repetitions = 3;
  const SweepResult result = RunSweep(spec);
  for (const PointSummary& summary : result.points) {
    ASSERT_EQ(summary.metrics.size(), 1u);
    EXPECT_EQ(summary.primary().name, "ttfb_ms");
    EXPECT_EQ(summary.primary().mode, MetricMode::kSummary);
  }
}

TEST(Sweep, VariantsMutateConfig) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.axes.variants = {
      {"pto=50", [](ExperimentConfig& c) { c.server_default_pto = sim::Millis(50); }},
      {"pto=400", [](ExperimentConfig& c) { c.server_default_pto = sim::Millis(400); }}};
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].variant, "pto=50");
  EXPECT_EQ(points[0].config.server_default_pto, sim::Millis(50));
  EXPECT_EQ(points[1].variant, "pto=400");
  EXPECT_EQ(points[1].config.server_default_pto, sim::Millis(400));
}

TEST(Sweep, CustomSeedScheduleMatchesLegacyLoop) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.response_body_bytes = 4096;
  spec.base.loss.DropRandom(sim::Direction::kServerToClient, 0.1);
  spec.repetitions = 8;
  spec.seed_base = 500;
  spec.seed_stride = 101;
  spec.metrics = {{"ttfb_ms", MetricMode::kSummary, /*exclude_negative=*/true,
                   [](const ExperimentResult& r) { return r.completed ? r.TtfbMs() : -1.0; }}};
  const SweepResult result = RunSweep(spec);

  std::vector<double> legacy;
  std::size_t legacy_aborted = 0;
  ExperimentConfig config = spec.base;
  for (int i = 0; i < spec.repetitions; ++i) {
    config.seed = 500 + static_cast<std::uint64_t>(i) * 101;
    const ExperimentResult r = RunExperiment(config);
    if (r.completed) {
      legacy.push_back(r.TtfbMs());
    } else {
      ++legacy_aborted;
    }
  }
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].aborted(), legacy_aborted);
  EXPECT_EQ(result.points[0].values().samples(), legacy);
}

TEST(Sweep, FindLocatesPoints) {
  SweepSpec spec = SmallSpec();
  const SweepResult result = RunSweep(spec);
  const PointSummary* cell = result.Find([](const SweepPoint& p) {
    return p.rtt_ms == 20.0 && p.config.behavior == quic::ServerBehavior::kInstantAck;
  });
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->point.behavior, "IACK");
  EXPECT_EQ(result.Find([](const SweepPoint&) { return false; }), nullptr);
}

// One CSV row and one JSON metric object per (point, metric); the trace
// vector rides in the JSON export.
TEST(Sweep, MultiMetricCsvAndJsonLayout) {
  SweepSpec spec;
  spec.name = "layout_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}}}};
  spec.repetitions = 3;
  spec.metrics = {{"m_summary", MetricMode::kSummary, /*exclude_negative=*/false, nullptr},
                  {"m_trace", MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    const double base = static_cast<double>(ctx.point.Extra("k")->value * 100);
    return std::vector<double>{base + ctx.repetition, base - ctx.repetition};
  };
  const SweepResult result = RunSweep(spec);

  const std::string json = SweepResultJson(result);
  EXPECT_NE(json.find("\"sweep\": \"layout_test\""), std::string::npos);
  EXPECT_NE(json.find("\"extras\": {\"k\": \"a\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"m_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\": [100, 99, 98]"), std::string::npos);
  EXPECT_NE(json.find("\"trace\": [200, 199, 198]"), std::string::npos);
  std::size_t objects = 0;
  for (std::size_t at = json.find("{\"point\""); at != std::string::npos;
       at = json.find("{\"point\"", at + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, result.points.size());

  // Header carries the metric columns; the CSV has points x metrics rows.
  const auto& header = SweepCsvHeader();
  EXPECT_NE(std::find(header.begin(), header.end(), "metric"), header.end());
  EXPECT_NE(std::find(header.begin(), header.end(), "metric_mode"), header.end());
  EXPECT_NE(std::find(header.begin(), header.end(), "extras"), header.end());
  EXPECT_NE(std::find(header.begin(), header.end(), "skipped"), header.end());
  CsvWriter csv(testing::TempDir(), "sweep_export_test", SweepCsvHeader());
  ASSERT_TRUE(csv.active());
  WriteSweepCsv(result, csv);
  EXPECT_EQ(csv.rows(), result.points.size() * spec.metrics.size());
}

TEST(Sweep, ObserverReportsEveryPointSerialized) {
  SweepSpec spec;
  spec.name = "observer_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}, {"c", 3}}}};
  spec.repetitions = 4;
  spec.metrics = {{"v", MetricMode::kSummary, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    return std::vector<double>{static_cast<double>(ctx.repetition)};
  };
  std::atomic<std::size_t> calls{0};
  std::size_t last_completed = 0;
  std::size_t last_runs = 0;
  spec.observer = [&](const SweepProgress& progress) {
    ++calls;
    last_completed = progress.points_completed;  // serialized: no race
    last_runs = progress.runs_completed;
    EXPECT_EQ(progress.points_total, 3u);
    EXPECT_EQ(progress.runs_total, 12u);
    EXPECT_EQ(progress.sweep, "observer_test");
  };
  const SweepResult result = RunSweep(spec);
  EXPECT_EQ(calls.load(), 3u);
  EXPECT_EQ(last_completed, 3u);
  EXPECT_EQ(last_runs, 12u);
  EXPECT_EQ(result.executed_runs, 12u);
}

// An already-expired budget skips every point cleanly: no partial series,
// every summary flagged, observer still called per point.
TEST(Sweep, ExpiredBudgetSkipsPointsCleanly) {
  SweepSpec spec;
  spec.name = "budget_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}}}};
  spec.repetitions = 3;
  spec.metrics = {{"v", MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.time_budget_seconds = 1e-9;  // expires before the first point starts
  std::atomic<std::size_t> ran{0};
  spec.runner = [&](const SweepRunContext& ctx) {
    ++ran;
    return std::vector<double>{static_cast<double>(ctx.repetition)};
  };
  const SweepResult result = RunSweep(spec);
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(result.executed_runs, 0u);
  for (const PointSummary& summary : result.points) {
    EXPECT_TRUE(summary.budget_skipped);
    EXPECT_TRUE(summary.primary().trace.empty());
  }
  // Without a budget the same spec runs everything.
  spec.time_budget_seconds = 0.0;
  const SweepResult full = RunSweep(spec);
  EXPECT_EQ(full.executed_runs, 6u);
  for (const PointSummary& summary : full.points) {
    EXPECT_FALSE(summary.budget_skipped);
    EXPECT_EQ(summary.primary().trace.size(), 3u);
  }
}

}  // namespace
}  // namespace quicer::core
