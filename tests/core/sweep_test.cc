#include "core/sweep.h"

#include <gtest/gtest.h>

#include "core/csv.h"
#include "core/loss_scenarios.h"

namespace quicer::core {
namespace {

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.name = "test_sweep";
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.rtt = sim::Millis(9);
  spec.base.response_body_bytes = 4096;
  spec.axes.behaviors = {quic::ServerBehavior::kWaitForCertificate,
                         quic::ServerBehavior::kInstantAck};
  spec.axes.rtts = {sim::Millis(5), sim::Millis(20)};
  spec.repetitions = 6;
  return spec;
}

TEST(Sweep, EnumerateBuildsFullGridInDocumentedOrder) {
  SweepSpec spec = SmallSpec();
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 4u);  // 2 RTTs x 2 behaviors
  // Outermost-to-innermost: ... RTT, mode, client, behavior.
  EXPECT_EQ(points[0].rtt_ms, 5.0);
  EXPECT_EQ(points[0].behavior, "WFC");
  EXPECT_EQ(points[1].rtt_ms, 5.0);
  EXPECT_EQ(points[1].behavior, "IACK");
  EXPECT_EQ(points[2].rtt_ms, 20.0);
  EXPECT_EQ(points[3].rtt_ms, 20.0);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
}

TEST(Sweep, EmptyAxesYieldSingleBasePoint) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kNgtcp2;
  spec.repetitions = 1;
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].client, "ngtcp2");
  EXPECT_EQ(points[0].loss, "none");
  EXPECT_EQ(points[0].variant, "base");
}

TEST(Sweep, SkipsUnsupportedHttp3Clients) {
  SweepSpec spec;
  spec.axes.http_versions = {http::Version::kHttp1, http::Version::kHttp3};
  spec.axes.clients.assign(clients::kAllClients.begin(), clients::kAllClients.end());
  const auto points = Enumerate(spec);
  // 8 clients on HTTP/1.1, 7 on HTTP/3 (go-x-net has no HTTP/3 support).
  EXPECT_EQ(points.size(), 15u);
}

TEST(Sweep, MedianMatchesCollectTtfbMs) {
  SweepSpec spec = SmallSpec();
  const SweepResult result = RunSweep(spec);
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.total_runs, 24u);

  for (const PointSummary& summary : result.points) {
    const auto legacy = CollectTtfbMs(summary.point.config, spec.repetitions);
    ASSERT_EQ(summary.values.count(), legacy.size());
    EXPECT_DOUBLE_EQ(summary.values.Median(), stats::Median(legacy))
        << summary.point.rtt_ms << " " << summary.point.behavior;
  }
}

TEST(Sweep, DeterministicAcrossParallelismCaps) {
  SweepSpec spec = SmallSpec();
  // Per-client loss keyed off the resolved config exercises the loss axis.
  spec.axes.losses = {{"second-client-flight", [](const ExperimentConfig& c) {
                         return SecondClientFlightLoss(c.client);
                       }}};
  spec.metric = [](const ExperimentResult& r) { return r.ResponseTtfbMs(); };

  const SweepResult serial = RunSweep(spec, /*max_parallelism=*/1);
  for (unsigned cap : {2u, 7u}) {
    const SweepResult parallel = RunSweep(spec, cap);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      const stats::Summary a = serial.points[i].values.Summarize();
      const stats::Summary b = parallel.points[i].values.Summarize();
      EXPECT_EQ(a.count, b.count) << cap;
      EXPECT_DOUBLE_EQ(a.median, b.median) << cap;
      EXPECT_DOUBLE_EQ(a.mean, b.mean) << cap;
      EXPECT_DOUBLE_EQ(a.stddev, b.stddev) << cap;  // fold order is fixed
      EXPECT_EQ(serial.points[i].aborted, parallel.points[i].aborted) << cap;
      EXPECT_EQ(serial.points[i].values.samples(), parallel.points[i].values.samples()) << cap;
    }
  }
}

TEST(Sweep, VariantsMutateConfig) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.axes.variants = {
      {"pto=50", [](ExperimentConfig& c) { c.server_default_pto = sim::Millis(50); }},
      {"pto=400", [](ExperimentConfig& c) { c.server_default_pto = sim::Millis(400); }}};
  const auto points = Enumerate(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].variant, "pto=50");
  EXPECT_EQ(points[0].config.server_default_pto, sim::Millis(50));
  EXPECT_EQ(points[1].variant, "pto=400");
  EXPECT_EQ(points[1].config.server_default_pto, sim::Millis(400));
}

TEST(Sweep, CustomSeedScheduleMatchesLegacyLoop) {
  SweepSpec spec;
  spec.base.client = clients::ClientImpl::kQuicGo;
  spec.base.response_body_bytes = 4096;
  spec.base.loss.DropRandom(sim::Direction::kServerToClient, 0.1);
  spec.repetitions = 8;
  spec.seed_base = 500;
  spec.seed_stride = 101;
  spec.metric = [](const ExperimentResult& r) { return r.completed ? r.TtfbMs() : -1.0; };
  const SweepResult result = RunSweep(spec);

  std::vector<double> legacy;
  std::size_t legacy_aborted = 0;
  ExperimentConfig config = spec.base;
  for (int i = 0; i < spec.repetitions; ++i) {
    config.seed = 500 + static_cast<std::uint64_t>(i) * 101;
    const ExperimentResult r = RunExperiment(config);
    if (r.completed) {
      legacy.push_back(r.TtfbMs());
    } else {
      ++legacy_aborted;
    }
  }
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].aborted, legacy_aborted);
  EXPECT_EQ(result.points[0].values.samples(), legacy);
}

TEST(Sweep, FindLocatesPoints) {
  SweepSpec spec = SmallSpec();
  const SweepResult result = RunSweep(spec);
  const PointSummary* cell = result.Find([](const SweepPoint& p) {
    return p.rtt_ms == 20.0 && p.config.behavior == quic::ServerBehavior::kInstantAck;
  });
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->point.behavior, "IACK");
  EXPECT_EQ(result.Find([](const SweepPoint&) { return false; }), nullptr);
}

TEST(Sweep, CsvAndJsonExportCoverEveryPoint) {
  SweepSpec spec = SmallSpec();
  spec.repetitions = 2;
  const SweepResult result = RunSweep(spec);

  const std::string json = SweepResultJson(result);
  EXPECT_NE(json.find("\"sweep\": \"test_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"median\""), std::string::npos);
  std::size_t objects = 0;
  for (std::size_t at = json.find("{\"point\""); at != std::string::npos;
       at = json.find("{\"point\"", at + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, result.points.size());

  CsvWriter csv(testing::TempDir(), "sweep_export_test", SweepCsvHeader());
  ASSERT_TRUE(csv.active());
  WriteSweepCsv(result, csv);
  EXPECT_EQ(csv.rows(), result.points.size());
}

}  // namespace
}  // namespace quicer::core
