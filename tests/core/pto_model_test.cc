#include "core/pto_model.h"

#include <gtest/gtest.h>

namespace quicer::core {
namespace {

TEST(PtoModel, FirstPtoIsThreeTimesSample) {
  EXPECT_EQ(FirstPto(sim::Millis(9)), sim::Millis(27));
  EXPECT_EQ(FirstPto(sim::Millis(100)), sim::Millis(300));
}

TEST(PtoModel, EvolutionStartsWith3DeltaGap) {
  // Fig 2: the first PTO gap between WFC and IACK is 3Δt.
  const auto points = ComputePtoEvolution(sim::Millis(9), sim::Millis(4), 50);
  ASSERT_EQ(points.size(), 50u);
  EXPECT_EQ(points[0].pto_wfc - points[0].pto_iack, 3 * sim::Millis(4));
}

TEST(PtoModel, WfcConvergesTowardsIack) {
  const auto points = ComputePtoEvolution(sim::Millis(9), sim::Millis(4), 50);
  // WFC is never better than IACK (the gap may transiently grow while the
  // inflated first sample raises the variance term — visible as the bump in
  // Fig 2) and converges to (almost) nothing within 50 new ACKs.
  for (const auto& point : points) {
    EXPECT_GE(point.pto_wfc, point.pto_iack);
  }
  const sim::Duration final_gap = points.back().pto_wfc - points.back().pto_iack;
  EXPECT_LT(final_gap, sim::Millis(1));
}

TEST(PtoModel, IackPtoIsFlatInStaticSetting) {
  const auto points = ComputePtoEvolution(sim::Millis(25), sim::Millis(4), 50);
  // All IACK samples equal the RTT; the PTO declines as variance decays but
  // never drops below smoothed + granularity.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].pto_iack, points[i - 1].pto_iack);
    EXPECT_GE(points[i].pto_iack, sim::Millis(25));
  }
}

TEST(PtoModel, ReductionInRttUnitsIs3DeltaOverRtt) {
  // Fig 4's y-value: (PTO_WFC - PTO_IACK)/RTT = 3Δt/RTT.
  const auto point = FirstPtoReduction(sim::Millis(10), sim::Millis(9));
  EXPECT_NEAR(point.reduction_rtts, 2.7, 0.01);
}

TEST(PtoModel, ReductionShrinksWithRtt) {
  // "Relative to the RTT, lower latency connections profit more."
  const double low = FirstPtoReduction(sim::Millis(5), sim::Millis(9)).reduction_rtts;
  const double high = FirstPtoReduction(sim::Millis(100), sim::Millis(9)).reduction_rtts;
  EXPECT_GT(low, high);
}

TEST(PtoModel, SpuriousZoneBoundaryAt3Rtt) {
  // Spurious retransmits iff Δt > client PTO = 3 x RTT.
  EXPECT_FALSE(FirstPtoReduction(sim::Millis(10), sim::Millis(29)).spurious_retransmissions);
  EXPECT_TRUE(FirstPtoReduction(sim::Millis(10), sim::Millis(31)).spurious_retransmissions);
  EXPECT_EQ(SpuriousBoundary(sim::Millis(10)), sim::Millis(30));
}

TEST(PtoModel, StateAddSampleMatchesRfcFormulae) {
  PtoState state;
  state.AddSample(sim::Millis(100));
  EXPECT_EQ(state.smoothed, sim::Millis(100));
  EXPECT_EQ(state.rttvar, sim::Millis(50));
  state.AddSample(sim::Millis(60));
  // rttvar = 3/4*50 + 1/4*|100-60| = 47.5; smoothed = 7/8*100 + 1/8*60 = 95.
  EXPECT_EQ(state.rttvar, sim::Millis(47.5));
  EXPECT_EQ(state.smoothed, sim::Millis(95));
}

TEST(PtoModel, GranularityFloor) {
  PtoState state;
  for (int i = 0; i < 500; ++i) state.AddSample(sim::Millis(10));
  EXPECT_EQ(state.Pto(), sim::Millis(11));  // smoothed + 1 ms floor
}

// Property sweep over the Fig 4 grid.
struct SweetSpotCase {
  int rtt_ms;
  int delta_ms;
};

class SweetSpotGrid : public ::testing::TestWithParam<SweetSpotCase> {};

TEST_P(SweetSpotGrid, ReductionFormulaAndSpuriousRule) {
  const auto& param = GetParam();
  const auto point = FirstPtoReduction(sim::Millis(static_cast<double>(param.rtt_ms)),
                                       sim::Millis(static_cast<double>(param.delta_ms)));
  EXPECT_NEAR(point.reduction_rtts, 3.0 * param.delta_ms / param.rtt_ms, 0.05);
  EXPECT_EQ(point.spurious_retransmissions, param.delta_ms > 3 * param.rtt_ms);
}

INSTANTIATE_TEST_SUITE_P(Fig4Grid, SweetSpotGrid,
                         ::testing::Values(SweetSpotCase{5, 1}, SweetSpotCase{5, 25},
                                           SweetSpotCase{10, 1}, SweetSpotCase{10, 9},
                                           SweetSpotCase{10, 25}, SweetSpotCase{20, 9},
                                           SweetSpotCase{50, 25}, SweetSpotCase{100, 1},
                                           SweetSpotCase{100, 9}, SweetSpotCase{100, 25},
                                           SweetSpotCase{2, 25}, SweetSpotCase{1, 9}));

}  // namespace
}  // namespace quicer::core
