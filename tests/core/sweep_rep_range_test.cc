// Repetition-range sharding: a window [a, b) of a point's repetitions runs
// with the absolute-repetition seed schedule, so the windows of a split
// point merge back bit-identically to an unsplit run — the property the
// distributed work queue's unit splitting relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sweep.h"
#include "core/sweep_partial.h"

namespace quicer::core {
namespace {

/// Synthetic two-metric spec whose values encode (point, repetition, seed),
/// with aborted and no-sample repetitions sprinkled in.
SweepSpec WindowSpec() {
  SweepSpec spec;
  spec.name = "rep_window_test";
  spec.axes.extras = {{"k", {{"a", 1}, {"b", 2}, {"c", 3}}}};
  spec.repetitions = 9;
  spec.seed_base = 100;
  spec.seed_stride = 7;
  spec.metrics = {{"m_sum", MetricMode::kSummary, /*exclude_negative=*/true, nullptr},
                  {"m_trace", MetricMode::kTrace, /*exclude_negative=*/false, nullptr}};
  spec.runner = [](const SweepRunContext& ctx) {
    const double k = static_cast<double>(ctx.point.Extra("k")->value);
    const double sum = ctx.repetition == 4 ? -1.0 : k * 1000.0 + static_cast<double>(ctx.seed);
    const double trace = ctx.repetition == 7 ? NoSample() : k + ctx.repetition * 0.25;
    return std::vector<double>{sum, trace};
  };
  return spec;
}

TEST(RepWindow, ResolvesAndClamps) {
  SweepShard shard;
  EXPECT_EQ(shard.RepWindow(9), (std::pair<std::size_t, std::size_t>{0, 9}));
  EXPECT_TRUE(shard.all());

  shard.rep_begin = 3;
  shard.rep_end = 6;
  EXPECT_FALSE(shard.all());
  EXPECT_EQ(shard.RepWindow(9), (std::pair<std::size_t, std::size_t>{3, 6}));
  EXPECT_EQ(shard.RepWindow(5), (std::pair<std::size_t, std::size_t>{3, 5}));
  EXPECT_EQ(shard.RepWindow(2), (std::pair<std::size_t, std::size_t>{2, 2}));  // empty

  shard.rep_end = 0;  // "to the end"
  EXPECT_EQ(shard.RepWindow(9), (std::pair<std::size_t, std::size_t>{3, 9}));
}

TEST(RepWindow, WindowExecutesOnlyItsRepetitions) {
  SweepSpec spec = WindowSpec();
  spec.shard.rep_begin = 2;
  spec.shard.rep_end = 5;
  const SweepResult result = RunSweep(spec);
  EXPECT_TRUE(result.partial());
  EXPECT_TRUE(result.sharded());
  EXPECT_EQ(result.executed_runs, 3u * 3u);
  for (const PointSummary& summary : result.points) {
    EXPECT_TRUE(summary.executed);
    // Repetition 4 aborts under exclude_negative: 2 retained of [2,5).
    EXPECT_EQ(summary.metrics[0].summary.count(), 2u);
    EXPECT_EQ(summary.metrics[0].aborted, 1u);
    EXPECT_EQ(summary.metrics[1].trace.size(), 3u);
  }

  // The windowed values equal the same absolute repetitions of a full run.
  const SweepResult full = RunSweep(WindowSpec());
  for (std::size_t i = 0; i < full.points.size(); ++i) {
    const std::vector<double>& full_trace = full.points[i].metrics[1].trace;
    // Repetition 7's NaN falls outside the window, so indices align 1:1.
    const std::vector<double> expected(full_trace.begin() + 2, full_trace.begin() + 5);
    EXPECT_EQ(result.points[i].metrics[1].trace, expected) << i;
  }
}

TEST(RepWindow, EmptyWindowExecutesNothing) {
  SweepSpec spec = WindowSpec();
  spec.shard.rep_begin = 9;  // at/after the last repetition
  const SweepResult result = RunSweep(spec);
  EXPECT_EQ(result.executed_runs, 0u);
  for (const PointSummary& summary : result.points) {
    EXPECT_FALSE(summary.executed);
  }
}

// The acceptance contract: splitting every point's repetitions into
// windows — across different window layouts — merges back byte-identically,
// through the partial-result JSON round trip.
TEST(RepWindow, WindowsMergeByteIdenticallyToUnsplitRun) {
  const SweepResult full = RunSweep(WindowSpec());
  const std::string full_json = SweepResultJson(full);

  const std::vector<std::vector<std::pair<std::size_t, std::size_t>>> layouts = {
      {{0, 3}, {3, 6}, {6, 0}},  // three even windows ("6:0" = to the end)
      {{0, 1}, {1, 8}, {8, 9}},  // lopsided
      {{0, 5}, {5, 9}},          // two windows
  };
  for (std::size_t l = 0; l < layouts.size(); ++l) {
    std::vector<SweepResult> partials;
    for (const auto& [begin, end] : layouts[l]) {
      SweepSpec spec = WindowSpec();
      spec.shard.rep_begin = begin;
      spec.shard.rep_end = end;
      std::string error;
      std::optional<SweepResult> parsed =
          ParseSweepPartialJson(SweepPartialJson(RunSweep(spec)), &error);
      ASSERT_TRUE(parsed.has_value()) << error;
      EXPECT_EQ(parsed->shard.rep_begin, begin);
      EXPECT_EQ(parsed->shard.rep_end, end);
      partials.push_back(std::move(*parsed));
    }
    std::string error;
    const std::optional<SweepResult> merged = MergeSweepResults(partials, &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(SweepResultJson(*merged), full_json) << "layout " << l;
  }
}

// MergeSweepResults orders partials by repetition window itself, so the
// glob order of partial files (lexicographic: reps10to12 before reps2to4)
// cannot scramble a split point's trace concatenation.
TEST(RepWindow, MergeIsIndependentOfPartialOrder) {
  SweepSpec base = WindowSpec();
  base.repetitions = 12;
  const SweepResult full = RunSweep(base);

  std::vector<SweepResult> partials;
  // Lexicographic file order of windows [0,2) [2,4) ... [10,12):
  // reps0to2, reps10to12, reps2to4, reps4to6, reps6to8, reps8to10.
  for (const std::size_t begin : {0u, 10u, 2u, 4u, 6u, 8u}) {
    SweepSpec spec = base;
    spec.shard.rep_begin = begin;
    spec.shard.rep_end = begin + 2;
    std::string error;
    std::optional<SweepResult> parsed =
        ParseSweepPartialJson(SweepPartialJson(RunSweep(spec)), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    partials.push_back(std::move(*parsed));
  }
  std::string error;
  const std::optional<SweepResult> merged = MergeSweepResults(partials, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(SweepResultJson(*merged), SweepResultJson(full));
}

// Windows compose with point selection: a (points, window) unit — the
// distributed queue's shape for split points — executes exactly that slice.
TEST(RepWindow, ComposesWithPointSelection) {
  SweepSpec spec = WindowSpec();
  spec.shard.points = {1};
  spec.shard.rep_begin = 0;
  spec.shard.rep_end = 4;
  const SweepResult result = RunSweep(spec);
  std::size_t executed = 0;
  for (const PointSummary& summary : result.points) {
    if (summary.executed) {
      ++executed;
      EXPECT_EQ(summary.point.index, 1u);
      EXPECT_EQ(summary.metrics[1].trace.size(), 4u);
    }
  }
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(result.executed_runs, 4u);
}

TEST(RepWindow, PartialFileNamesCarryTheWindow) {
  SweepResult result;
  result.name = "x";
  result.shard.rep_begin = 0;
  result.shard.rep_end = 10;
  EXPECT_EQ(SweepPartialFileName(result), "x_sweep.reps0to10.json");

  result.shard.rep_begin = 10;
  result.shard.rep_end = 0;
  EXPECT_EQ(SweepPartialFileName(result), "x_sweep.reps10toend.json");

  result.shard.points = {1, 2};
  EXPECT_EQ(SweepPartialFileName(result), "x_sweep.points.reps10toend.json");

  result.shard.points.clear();
  result.shard.index = 1;
  result.shard.count = 4;
  EXPECT_EQ(SweepPartialFileName(result), "x_sweep.shard1of4.reps10toend.json");

  result.shard = SweepShard{};
  EXPECT_EQ(SweepPartialFileName(result), "x_sweep.partial.json");
}

}  // namespace
}  // namespace quicer::core
