// Failure injection: the engine must stay live (complete or cleanly abort)
// under hostile conditions — random loss in both directions, extreme delays,
// pathological configurations.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::core {
namespace {

ExperimentConfig Robust(clients::ClientImpl impl = clients::ClientImpl::kQuicGo) {
  ExperimentConfig config;
  config.client = impl;
  config.rtt = sim::Millis(20);
  config.response_body_bytes = 10 * 1024;
  config.time_limit = sim::Seconds(120);
  return config;
}

TEST(FailureInjection, RandomLossBothDirectionsStillCompletes) {
  for (double rate : {0.05, 0.1, 0.2}) {
    int completed = 0;
    const int runs = 10;
    for (int i = 0; i < runs; ++i) {
      ExperimentConfig config = Robust();
      config.behavior =
          i % 2 == 0 ? quic::ServerBehavior::kInstantAck : quic::ServerBehavior::kWaitForCertificate;
      config.seed = 100 + static_cast<std::uint64_t>(i);
      sim::LossPattern pattern;
      pattern.DropRandom(sim::Direction::kClientToServer, rate);
      pattern.DropRandom(sim::Direction::kServerToClient, rate);
      config.loss = pattern;
      const ExperimentResult result = RunExperiment(config);
      if (result.completed) ++completed;
    }
    EXPECT_GE(completed, runs - 1) << "loss rate " << rate;
  }
}

TEST(FailureInjection, EveryClientSurvivesTenPercentLoss) {
  for (clients::ClientImpl impl : clients::kAllClients) {
    ExperimentConfig config = Robust(impl);
    config.behavior = quic::ServerBehavior::kInstantAck;
    sim::LossPattern pattern;
    pattern.DropRandom(sim::Direction::kServerToClient, 0.1);
    config.loss = pattern;
    config.seed = 7;
    const ExperimentResult result = RunExperiment(config);
    // quiche may abort via its CID quirk under retransmissions — a clean
    // abort is acceptable; a hang is not.
    EXPECT_TRUE(result.completed || result.client.aborted) << clients::Name(impl);
  }
}

TEST(FailureInjection, ExtremeCertStoreDelay) {
  ExperimentConfig config = Robust();
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.cert_fetch_delay = sim::Seconds(2);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  // The client kept probing the whole time (PTO backoff).
  EXPECT_GT(result.client.probe_datagrams_sent, 1);
  EXPECT_GT(result.TtfbMs(), 2000.0);
}

TEST(FailureInjection, VeryHighRttCompletes) {
  ExperimentConfig config = Robust();
  config.rtt = sim::Millis(600);
  config.time_limit = sim::Seconds(60);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
}

TEST(FailureInjection, TinyBandwidthCompletes) {
  ExperimentConfig config = Robust();
  config.bandwidth_bps = 64 * 1024;  // 64 kbit/s
  config.response_body_bytes = 4096;
  config.time_limit = sim::Seconds(120);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
}

TEST(FailureInjection, ZeroByteResponseBody) {
  ExperimentConfig config = Robust();
  config.response_body_bytes = 0;  // headers only
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.client.first_stream_byte, 0);
}

TEST(FailureInjection, EverythingLostTimesOutCleanly) {
  ExperimentConfig config = Robust();
  sim::LossPattern pattern;
  pattern.DropRandom(sim::Direction::kServerToClient, 1.0);
  config.loss = pattern;
  config.time_limit = sim::Seconds(10);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.completed);
  // One in-flight backoff event may run past the deadline before the loop
  // observes it.
  EXPECT_LE(result.end_time, sim::Seconds(20));
  // The client backed off exponentially rather than flooding.
  EXPECT_LT(result.client.probe_datagrams_sent, 40);
}

TEST(FailureInjection, LossOfClientHelloRecovers) {
  ExperimentConfig config = Robust();
  sim::LossPattern pattern;
  pattern.DropIndices(sim::Direction::kClientToServer, {1});
  config.loss = pattern;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  // Recovery needed the client's default PTO.
  EXPECT_GT(result.TtfbMs(), 200.0);
}

TEST(FailureInjection, LossOfInstantAckIsHarmless) {
  // If only the instant ACK is lost, the flight still arrives and the
  // connection behaves like WFC.
  ExperimentConfig config = Robust();
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.cert_fetch_delay = sim::Millis(30);
  sim::LossPattern pattern;
  pattern.DropIndices(sim::Direction::kServerToClient, {1});
  config.loss = pattern;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
}

TEST(FailureInjection, RepeatedLossOfServerFlightBacksOffExponentially) {
  ExperimentConfig config = Robust();
  config.behavior = quic::ServerBehavior::kInstantAck;
  sim::LossPattern pattern;
  // Lose the flight and its first two retransmissions.
  pattern.DropIndices(sim::Direction::kServerToClient, {2, 3, 4, 5, 6, 7});
  config.loss = pattern;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.server.pto_expirations, 1);
  // Server default PTO 200 ms with doubling: > 600 ms before success.
  EXPECT_GT(result.TtfbMs(), 500.0);
}

TEST(FailureInjection, PaddedInstantAckConsumesBudget) {
  // §5: a padded instant ACK (PMTUD probe) spends 1200 B of the 3x budget.
  ExperimentConfig plain = Robust();
  plain.behavior = quic::ServerBehavior::kInstantAck;
  plain.certificate_bytes = tls::kLargeCertificateBytes;
  plain.cert_fetch_delay = sim::Millis(50);
  ExperimentConfig padded = plain;
  padded.pad_instant_ack = true;
  const ExperimentResult r_plain = RunExperiment(plain);
  const ExperimentResult r_padded = RunExperiment(padded);
  ASSERT_TRUE(r_plain.completed && r_padded.completed);
  EXPECT_GE(r_padded.TtfbMs() + 0.01, r_plain.TtfbMs());
}

}  // namespace
}  // namespace quicer::core
