#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::core {
namespace {

TEST(IdleTimeout, DeadConnectionClosesAtDeadline) {
  ExperimentConfig config;
  config.rtt = sim::Millis(9);
  sim::LossPattern pattern;
  pattern.DropRandom(sim::Direction::kServerToClient, 1.0);
  pattern.DropRandom(sim::Direction::kClientToServer, 1.0);
  config.loss = pattern;
  quic::ConnectionConfig client = clients::MakeClientConfig(config.client, config.http);
  client.idle_timeout = sim::Seconds(5);
  config.client_config_override = client;
  config.time_limit = sim::Seconds(60);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.client.aborted);
  EXPECT_EQ(result.client.abort_reason, "idle timeout");
}

TEST(IdleTimeout, ActivityKeepsConnectionAlive) {
  // A 10 MB transfer takes ~9 s at 10 Mbit/s; a 3 s idle timeout must not
  // fire because datagrams keep arriving.
  ExperimentConfig config;
  config.rtt = sim::Millis(20);
  config.response_body_bytes = http::kLargeFileBytes;
  config.time_limit = sim::Seconds(60);
  quic::ConnectionConfig client = clients::MakeClientConfig(config.client, config.http);
  client.idle_timeout = sim::Seconds(3);
  client.trace.capture_packets = false;
  config.client_config_override = client;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.client.aborted);
}

TEST(IdleTimeout, ZeroDisablesTheTimer) {
  ExperimentConfig config;
  config.rtt = sim::Millis(9);
  sim::LossPattern pattern;
  pattern.DropRandom(sim::Direction::kServerToClient, 1.0);
  config.loss = pattern;
  quic::ConnectionConfig client = clients::MakeClientConfig(config.client, config.http);
  client.idle_timeout = 0;
  config.client_config_override = client;
  config.time_limit = sim::Seconds(40);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.client.abort_reason, "idle timeout");
}

TEST(IdleTimeout, DefaultIsThirtySeconds) {
  quic::ConnectionConfig config;
  EXPECT_EQ(config.idle_timeout, sim::Seconds(30));
}

}  // namespace
}  // namespace quicer::core
