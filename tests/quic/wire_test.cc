#include "quic/wire.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace quicer::quic::wire {
namespace {

TEST(VarInt, EncodingLengthsMatchRfc9000) {
  std::vector<std::uint8_t> out;
  AppendVarInt(out, 63);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  AppendVarInt(out, 64);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  AppendVarInt(out, 16383);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  AppendVarInt(out, 16384);
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  AppendVarInt(out, 1073741823);
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  AppendVarInt(out, 1073741824);
  EXPECT_EQ(out.size(), 8u);
}

TEST(VarInt, RoundTripsAcrossBoundaries) {
  for (std::uint64_t value : {0ULL, 1ULL, 63ULL, 64ULL, 16383ULL, 16384ULL, 1073741823ULL,
                              1073741824ULL, (1ULL << 62) - 1}) {
    std::vector<std::uint8_t> out;
    AppendVarInt(out, value);
    std::size_t offset = 0;
    auto decoded = ReadVarInt(out, offset);
    ASSERT_TRUE(decoded.has_value()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(VarInt, TruncatedInputFails) {
  std::vector<std::uint8_t> out;
  AppendVarInt(out, 100000);
  out.pop_back();
  std::size_t offset = 0;
  EXPECT_FALSE(ReadVarInt(out, offset).has_value());
}

TEST(VarInt, RandomRoundTrip) {
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t value = rng.Next() & ((1ULL << 62) - 1);
    std::vector<std::uint8_t> out;
    AppendVarInt(out, value);
    std::size_t offset = 0;
    auto decoded = ReadVarInt(out, offset);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value);
  }
}

Frame RandomFrame(sim::Rng& rng) {
  switch (rng.UniformInt(0, 10)) {
    case 0: return PaddingFrame{static_cast<std::uint32_t>(rng.UniformInt(0, 1200))};
    case 1: return PingFrame{};
    case 2: {
      AckFrame ack;
      ack.largest_acked = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
      ack.ack_delay = rng.UniformInt(0, 100000);
      const int ranges = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < ranges; ++i) {
        const std::uint64_t first = static_cast<std::uint64_t>(rng.UniformInt(0, 500));
        ack.ranges.push_back(PnRange{first, first + static_cast<std::uint64_t>(
                                                        rng.UniformInt(0, 20))});
      }
      return ack;
    }
    case 3:
      return CryptoFrame{static_cast<std::uint64_t>(rng.UniformInt(0, 10000)),
                         static_cast<std::uint32_t>(rng.UniformInt(0, 2000)),
                         static_cast<tls::MessageType>(rng.UniformInt(0, 5))};
    case 4: {
      StreamFrame stream;
      stream.stream_id = static_cast<std::uint64_t>(rng.UniformInt(0, 16));
      stream.offset = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 20));
      stream.length = static_cast<std::uint32_t>(rng.UniformInt(0, 1200));
      stream.fin = rng.Bernoulli(0.3);
      return stream;
    }
    case 5: return MaxDataFrame{static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 30))};
    case 6: return HandshakeDoneFrame{};
    case 7:
      return NewConnectionIdFrame{static_cast<std::uint64_t>(rng.UniformInt(0, 10)),
                                  static_cast<std::uint64_t>(rng.UniformInt(0, 10))};
    case 8: return RetireConnectionIdFrame{static_cast<std::uint64_t>(rng.UniformInt(0, 10))};
    case 9: return ConnectionCloseFrame{static_cast<std::uint64_t>(rng.UniformInt(0, 100)),
                                        "test close"};
    default: return RetryFrame{static_cast<std::uint64_t>(rng.UniformInt(1, 1 << 20))};
  }
}

bool FramesEqual(const Frame& a, const Frame& b) {
  if (a.index() != b.index()) return false;
  // Compare via wire re-encoding (the codec is canonical).
  std::vector<std::uint8_t> ea;
  std::vector<std::uint8_t> eb;
  EncodeFrame(ea, a);
  EncodeFrame(eb, b);
  return ea == eb;
}

TEST(FrameCodec, RandomFrameRoundTrip) {
  sim::Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const Frame frame = RandomFrame(rng);
    std::vector<std::uint8_t> encoded;
    EncodeFrame(encoded, frame);
    std::size_t offset = 0;
    auto decoded = DecodeFrame(encoded, offset);
    ASSERT_TRUE(decoded.has_value()) << Describe(frame);
    EXPECT_EQ(offset, encoded.size());
    EXPECT_TRUE(FramesEqual(frame, *decoded)) << Describe(frame) << " vs "
                                              << Describe(*decoded);
  }
}

TEST(FrameCodec, UnknownTypeFails) {
  std::vector<std::uint8_t> data{0x7f};
  std::size_t offset = 0;
  EXPECT_FALSE(DecodeFrame(data, offset).has_value());
}

TEST(PacketCodec, RoundTripWithToken) {
  Packet packet;
  packet.space = PacketNumberSpace::kInitial;
  packet.packet_number = 7;
  packet.token = 0x7eACCed;
  packet.frames = {CryptoFrame{0, 280, tls::MessageType::kClientHello}, PaddingFrame{800}};
  const auto encoded = EncodePacket(packet);
  const auto decoded = DecodePacket(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->space, packet.space);
  EXPECT_EQ(decoded->packet_number, 7u);
  EXPECT_EQ(decoded->token, 0x7eACCedu);
  ASSERT_EQ(decoded->frames.size(), 2u);
  EXPECT_TRUE(FramesEqual(decoded->frames[0], packet.frames[0]));
}

TEST(PacketCodec, TrailingGarbageRejected) {
  Packet packet;
  packet.frames = {PingFrame{}};
  auto encoded = EncodePacket(packet);
  encoded.push_back(0x00);
  EXPECT_FALSE(DecodePacket(encoded).has_value());
}

TEST(PacketCodec, InvalidSpaceRejected) {
  std::vector<std::uint8_t> data{9, 0, 0, 0};
  EXPECT_FALSE(DecodePacket(data).has_value());
}

TEST(DatagramCodec, CoalescedRoundTrip) {
  sim::Rng rng(17);
  for (int run = 0; run < 200; ++run) {
    Datagram datagram;
    const int packets = static_cast<int>(rng.UniformInt(1, 3));
    for (int p = 0; p < packets; ++p) {
      Packet packet;
      packet.space = static_cast<PacketNumberSpace>(rng.UniformInt(0, 2));
      packet.packet_number = static_cast<std::uint64_t>(rng.UniformInt(0, 100));
      const int frames = static_cast<int>(rng.UniformInt(1, 4));
      for (int f = 0; f < frames; ++f) packet.frames.push_back(RandomFrame(rng));
      datagram.packets.push_back(std::move(packet));
    }
    const auto encoded = EncodeDatagram(datagram);
    const auto decoded = DecodeDatagram(encoded);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->packets.size(), datagram.packets.size());
    for (std::size_t p = 0; p < datagram.packets.size(); ++p) {
      EXPECT_EQ(decoded->packets[p].packet_number, datagram.packets[p].packet_number);
      ASSERT_EQ(decoded->packets[p].frames.size(), datagram.packets[p].frames.size());
      for (std::size_t f = 0; f < datagram.packets[p].frames.size(); ++f) {
        EXPECT_TRUE(
            FramesEqual(decoded->packets[p].frames[f], datagram.packets[p].frames[f]));
      }
    }
  }
}

TEST(DatagramCodec, CorruptionDetected) {
  // Truncations must never decode successfully (no crashes, no false
  // positives on datagram framing).
  Datagram datagram;
  Packet packet;
  packet.frames = {CryptoFrame{0, 100, tls::MessageType::kServerHello}, PingFrame{}};
  datagram.packets.push_back(packet);
  const auto encoded = EncodeDatagram(datagram);
  for (std::size_t cut = 0; cut + 1 < encoded.size(); ++cut) {
    std::vector<std::uint8_t> truncated(encoded.begin(),
                                        encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeDatagram(truncated).has_value()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace quicer::quic::wire
