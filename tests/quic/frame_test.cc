#include "quic/frame.h"

#include <gtest/gtest.h>

namespace quicer::quic {
namespace {

TEST(Frames, AckElicitingClassification) {
  // RFC 9002 §2: all frames except ACK, PADDING and CONNECTION_CLOSE elicit
  // acknowledgments.
  EXPECT_FALSE(IsAckEliciting(AckFrame{}));
  EXPECT_FALSE(IsAckEliciting(PaddingFrame{100}));
  EXPECT_FALSE(IsAckEliciting(ConnectionCloseFrame{}));
  EXPECT_TRUE(IsAckEliciting(PingFrame{}));
  EXPECT_TRUE(IsAckEliciting(CryptoFrame{0, 10, tls::MessageType::kClientHello}));
  EXPECT_TRUE(IsAckEliciting(StreamFrame{0, 0, 10, false}));
  EXPECT_TRUE(IsAckEliciting(MaxDataFrame{1000}));
  EXPECT_TRUE(IsAckEliciting(HandshakeDoneFrame{}));
  EXPECT_TRUE(IsAckEliciting(NewConnectionIdFrame{1, 1}));
  EXPECT_TRUE(IsAckEliciting(RetireConnectionIdFrame{0}));
}

TEST(Frames, InstantAckDatagramIsNotAckEliciting) {
  // The key protocol fact behind Fig 6: an ACK(+padding)-only packet does
  // not elicit an acknowledgment, so the server gets no RTT sample from it.
  std::vector<Frame> instant_ack{AckFrame{}, PaddingFrame{1100}};
  EXPECT_FALSE(AnyAckEliciting(instant_ack));
}

TEST(Frames, RetransmittableClassification) {
  EXPECT_TRUE(IsRetransmittable(CryptoFrame{0, 10, tls::MessageType::kServerHello}));
  EXPECT_TRUE(IsRetransmittable(StreamFrame{}));
  EXPECT_TRUE(IsRetransmittable(MaxDataFrame{}));
  EXPECT_TRUE(IsRetransmittable(HandshakeDoneFrame{}));
  EXPECT_TRUE(IsRetransmittable(NewConnectionIdFrame{}));
  EXPECT_FALSE(IsRetransmittable(AckFrame{}));
  EXPECT_FALSE(IsRetransmittable(PingFrame{}));
  EXPECT_FALSE(IsRetransmittable(PaddingFrame{}));
}

TEST(Frames, WireSizeCryptoIncludesPayload) {
  const CryptoFrame frame{0, 500, tls::MessageType::kCertificate};
  const std::size_t size = WireSize(Frame(frame));
  EXPECT_GE(size, 500u + 3u);
  EXPECT_LE(size, 500u + 10u);
}

TEST(Frames, WireSizeStreamIncludesPayload) {
  const StreamFrame frame{0, 0, 1000, true};
  EXPECT_GE(WireSize(Frame(frame)), 1000u);
  EXPECT_LE(WireSize(Frame(frame)), 1012u);
}

TEST(Frames, WireSizePaddingIsItsSize) {
  EXPECT_EQ(WireSize(Frame(PaddingFrame{137})), 137u);
}

TEST(Frames, WireSizePingIsOneByte) { EXPECT_EQ(WireSize(Frame(PingFrame{})), 1u); }

TEST(Frames, AckWireSizeGrowsWithRanges) {
  AckFrame one_range;
  one_range.largest_acked = 5;
  one_range.ranges = {PnRange{0, 5}};
  AckFrame three_ranges;
  three_ranges.largest_acked = 20;
  three_ranges.ranges = {PnRange{18, 20}, PnRange{10, 12}, PnRange{0, 5}};
  EXPECT_GT(WireSize(Frame(three_ranges)), WireSize(Frame(one_range)));
}

TEST(Frames, AckFrameAcksMembership) {
  AckFrame ack;
  ack.largest_acked = 10;
  ack.ranges = {PnRange{8, 10}, PnRange{2, 4}};
  EXPECT_TRUE(ack.Acks(9));
  EXPECT_TRUE(ack.Acks(2));
  EXPECT_FALSE(ack.Acks(5));
  EXPECT_FALSE(ack.Acks(11));
}

TEST(Frames, VectorWireSizeIsSum) {
  std::vector<Frame> frames{PingFrame{}, PaddingFrame{10}};
  EXPECT_EQ(WireSize(frames), 11u);
}

TEST(Frames, DescribeIsHumanReadable) {
  EXPECT_EQ(Describe(Frame(PingFrame{})), "PING");
  EXPECT_NE(Describe(Frame(CryptoFrame{0, 10, tls::MessageType::kServerHello}))
                .find("ServerHello"),
            std::string::npos);
  EXPECT_NE(Describe(Frame(StreamFrame{3, 0, 9, false})).find("STREAM[3"), std::string::npos);
}

}  // namespace
}  // namespace quicer::quic
