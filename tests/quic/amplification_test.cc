#include "quic/amplification.h"

#include <gtest/gtest.h>

#include "quic/types.h"

namespace quicer::quic {
namespace {

TEST(Amplification, ClientIsNeverLimited) {
  AmplificationLimiter amp(/*enforced=*/false);
  EXPECT_TRUE(amp.validated());
  EXPECT_TRUE(amp.CanSend(1'000'000));
}

TEST(Amplification, ServerStartsWithZeroBudget) {
  AmplificationLimiter amp(/*enforced=*/true);
  EXPECT_EQ(amp.Budget(), 0u);
  EXPECT_FALSE(amp.CanSend(1));
}

TEST(Amplification, BudgetIsThreeTimesReceived) {
  AmplificationLimiter amp(true);
  amp.OnBytesReceived(1200);
  EXPECT_EQ(amp.Budget(), 3600u);
  EXPECT_TRUE(amp.CanSend(3600));
  EXPECT_FALSE(amp.CanSend(3601));
}

TEST(Amplification, SendingConsumesBudget) {
  AmplificationLimiter amp(true);
  amp.OnBytesReceived(1200);
  amp.OnBytesSent(2400);
  EXPECT_EQ(amp.Budget(), 1200u);
  amp.OnBytesSent(1200);
  EXPECT_EQ(amp.Budget(), 0u);
}

TEST(Amplification, PaddedClientInitialFundsPartialLargeCertFlight) {
  // The paper's large certificate (5,113 B) flight exceeds one padded
  // Initial's budget — the Fig 5 blocking scenario.
  AmplificationLimiter amp(true);
  amp.OnBytesReceived(kMinInitialDatagramSize);
  const std::size_t flight = 5113 + 123 + 98 + 304 + 36 + 200;
  EXPECT_LT(amp.Budget(), flight);
  // The small certificate flight fits.
  const std::size_t small_flight = 1212 + 123 + 98 + 304 + 36 + 200;
  EXPECT_GE(amp.Budget(), small_flight);
}

TEST(Amplification, ValidationLiftsTheLimit) {
  AmplificationLimiter amp(true);
  amp.OnBytesReceived(10);
  amp.OnAddressValidated();
  EXPECT_TRUE(amp.validated());
  EXPECT_TRUE(amp.CanSend(1'000'000'000));
}

TEST(Amplification, MoreDataIncreasesBudget) {
  AmplificationLimiter amp(true);
  amp.OnBytesReceived(1200);
  amp.OnBytesSent(3600);
  EXPECT_EQ(amp.Budget(), 0u);
  amp.OnBytesReceived(1200);  // client PTO probe, padded
  EXPECT_EQ(amp.Budget(), 3600u);
}

TEST(Amplification, BlockedBookkeeping) {
  AmplificationLimiter amp(true);
  amp.NoteBlocked(sim::Millis(10));
  amp.NoteBlocked(sim::Millis(12));  // still blocked: no second event
  EXPECT_EQ(amp.blocked_events(), 1u);
  EXPECT_EQ(amp.total_blocked_time(sim::Millis(20)), sim::Millis(10));
  amp.NoteUnblocked(sim::Millis(25));
  EXPECT_EQ(amp.total_blocked_time(sim::Millis(100)), sim::Millis(15));
  amp.NoteBlocked(sim::Millis(30));
  EXPECT_EQ(amp.blocked_events(), 2u);
}

TEST(Amplification, UnblockedWithoutBlockIsNoop) {
  AmplificationLimiter amp(true);
  amp.NoteUnblocked(sim::Millis(5));
  EXPECT_EQ(amp.blocked_events(), 0u);
  EXPECT_EQ(amp.total_blocked_time(sim::Millis(10)), 0);
}

}  // namespace
}  // namespace quicer::quic
