#include "quic/packet.h"

#include <gtest/gtest.h>

namespace quicer::quic {
namespace {

Packet MakePacket(PacketNumberSpace space, std::vector<Frame> frames) {
  Packet packet;
  packet.space = space;
  packet.packet_number = 0;
  packet.frames = std::move(frames);
  return packet;
}

TEST(Packet, LongHeadersLargerThanShort) {
  const Packet initial = MakePacket(PacketNumberSpace::kInitial, {PingFrame{}});
  const Packet handshake = MakePacket(PacketNumberSpace::kHandshake, {PingFrame{}});
  const Packet app = MakePacket(PacketNumberSpace::kAppData, {PingFrame{}});
  EXPECT_GT(initial.HeaderSize(), app.HeaderSize());
  EXPECT_GT(handshake.HeaderSize(), app.HeaderSize());
}

TEST(Packet, WireSizeIncludesAeadTag) {
  const Packet packet = MakePacket(PacketNumberSpace::kAppData, {PingFrame{}});
  EXPECT_EQ(packet.WireSize(), packet.HeaderSize() + 1 + kAeadTagSize);
}

TEST(Packet, AckElicitingFollowsFrames) {
  EXPECT_FALSE(MakePacket(PacketNumberSpace::kInitial, {AckFrame{}}).IsAckEliciting());
  EXPECT_TRUE(
      MakePacket(PacketNumberSpace::kInitial, {AckFrame{}, PingFrame{}}).IsAckEliciting());
}

TEST(Packet, RetransmittableFramesFiltersAcksAndPadding) {
  const Packet packet = MakePacket(
      PacketNumberSpace::kHandshake,
      {AckFrame{}, CryptoFrame{0, 50, tls::MessageType::kFinished}, PaddingFrame{100}});
  const auto frames = packet.RetransmittableFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<CryptoFrame>(frames[0]));
}

TEST(Packet, FindAndHas) {
  const Packet packet =
      MakePacket(PacketNumberSpace::kAppData, {StreamFrame{0, 0, 10, false}, AckFrame{}});
  EXPECT_TRUE(packet.Has<StreamFrame>());
  EXPECT_TRUE(packet.Has<AckFrame>());
  EXPECT_FALSE(packet.Has<PingFrame>());
  ASSERT_NE(packet.Find<StreamFrame>(), nullptr);
  EXPECT_EQ(packet.Find<StreamFrame>()->length, 10u);
  EXPECT_EQ(packet.Find<PingFrame>(), nullptr);
}

TEST(Datagram, WireSizeSumsPackets) {
  Datagram datagram;
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kInitial, {PingFrame{}}));
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kHandshake, {PingFrame{}}));
  EXPECT_EQ(datagram.WireSize(),
            datagram.packets[0].WireSize() + datagram.packets[1].WireSize());
}

TEST(Datagram, HasSpaceChecksCoalescedPackets) {
  Datagram datagram;
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kInitial, {AckFrame{}}));
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kHandshake, {PingFrame{}}));
  EXPECT_TRUE(datagram.HasSpace(PacketNumberSpace::kInitial));
  EXPECT_TRUE(datagram.HasSpace(PacketNumberSpace::kHandshake));
  EXPECT_FALSE(datagram.HasSpace(PacketNumberSpace::kAppData));
}

TEST(Datagram, PadToReachesTarget) {
  Datagram datagram;
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kInitial,
                                        {CryptoFrame{0, 280, tls::MessageType::kClientHello}}));
  PadDatagramTo(datagram, kMinInitialDatagramSize);
  EXPECT_GE(datagram.WireSize(), kMinInitialDatagramSize);
  EXPECT_LE(datagram.WireSize(), kMinInitialDatagramSize + 8);
}

TEST(Datagram, PadToNoopWhenAlreadyLarge) {
  Datagram datagram;
  datagram.packets.push_back(
      MakePacket(PacketNumberSpace::kInitial, {PaddingFrame{1300}}));
  const std::size_t before = datagram.WireSize();
  PadDatagramTo(datagram, 1200);
  EXPECT_EQ(datagram.WireSize(), before);
}

TEST(Datagram, PadEmptyIsNoop) {
  Datagram datagram;
  PadDatagramTo(datagram, 1200);
  EXPECT_TRUE(datagram.packets.empty());
}

TEST(Datagram, DescribeListsCoalescedPackets) {
  Datagram datagram;
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kInitial, {AckFrame{}}));
  datagram.packets.push_back(MakePacket(PacketNumberSpace::kHandshake, {PingFrame{}}));
  const std::string description = datagram.Describe();
  EXPECT_NE(description.find("Initial"), std::string::npos);
  EXPECT_NE(description.find("Handshake"), std::string::npos);
  EXPECT_NE(description.find(" | "), std::string::npos);
}

}  // namespace
}  // namespace quicer::quic
