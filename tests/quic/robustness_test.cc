// Robustness features: path jitter/reordering, persistent congestion, and
// the HTTP/3 variants of the paper's loss scenarios (Appendix F: "Similar
// behavior is observed for HTTP/3").
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.h"
#include "core/loss_scenarios.h"
#include "recovery/congestion.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

// ---------- path jitter ----------

TEST(PathJitter, HandshakeSurvivesReordering) {
  for (double jitter_ms : {0.5, 2.0, 5.0}) {
    ExperimentConfig config;
    config.rtt = sim::Millis(9);
    config.path_jitter = sim::Millis(jitter_ms);
    config.response_body_bytes = 10 * 1024;
    config.seed = 11;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_TRUE(result.completed) << "jitter " << jitter_ms;
  }
}

TEST(PathJitter, BulkTransferSurvivesReordering) {
  ExperimentConfig config;
  config.rtt = sim::Millis(20);
  config.path_jitter = sim::Millis(1.5);  // > inter-datagram spacing: reorders
  config.response_body_bytes = 512 * 1024;
  config.time_limit = sim::Seconds(60);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  // Reordering may cause some spurious loss detection, but the transfer
  // finishes in reasonable time (not PTO-bound).
  EXPECT_LT(sim::ToMillis(result.client.response_complete), 5000.0);
}

TEST(PathJitter, LinkJitterSpreadsArrivalTimes) {
  // Link-level check (the engine's end-to-end rttvar is dominated by the
  // bottleneck queue, so measure the path model directly): with jitter,
  // arrival spacing varies and can reorder.
  sim::EventQueue queue;
  sim::Link::Config config;
  config.one_way_delay = sim::Millis(10);
  config.bandwidth_bps = 1e9;  // no serialisation influence
  config.jitter = sim::Millis(5);
  sim::Link link(queue, config, sim::Rng(3));
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 200; ++i) {
    queue.Schedule(i * sim::Millis(1.0), [&link, &arrivals, &queue] {
      link.Send(sim::Direction::kClientToServer, 100,
                [&arrivals, &queue] { arrivals.push_back(queue.now()); });
    });
  }
  queue.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 200u);
  bool reordered = false;
  sim::Duration min_delay = sim::kNever;
  sim::Duration max_delay = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0 && arrivals[i] < arrivals[i - 1]) reordered = true;
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const sim::Duration delay = arrivals[i] - static_cast<sim::Time>(i) * sim::Millis(1.0);
    min_delay = std::min(min_delay, delay);
    max_delay = std::max(max_delay, delay);
  }
  // Delivery callbacks fire in time order, so the sorted arrival list shows
  // the jitter spread; with 5 ms jitter over 1 ms spacing the raw per-send
  // delays must span most of [10, 15] ms.
  EXPECT_GE(max_delay - min_delay, sim::Millis(3));
  (void)reordered;  // reordering manifests as non-monotonic delivery order
}

// ---------- persistent congestion ----------

TEST(PersistentCongestion, UnitCollapseToMinimumWindow) {
  recovery::NewRenoCongestion cc;
  cc.OnPacketSent(12000);
  cc.OnPersistentCongestion();
  EXPECT_EQ(cc.congestion_window(), 2u * 1200u);
  EXPECT_FALSE(cc.InSlowStart());  // ssthresh == cwnd
}

TEST(PersistentCongestion, DurationIsThreePtoPeriods) {
  EXPECT_EQ(recovery::NewRenoCongestion::PersistentCongestionDuration(sim::Millis(30)),
            sim::Millis(90));
}

TEST(PersistentCongestion, LongBlackoutTriggersDeclaration) {
  // Black out the path for 1.2 s mid-transfer: every packet and probe in
  // the window is lost, so the loss span far exceeds the persistent-
  // congestion duration (3x PTO).
  ExperimentConfig config;
  config.rtt = sim::Millis(10);
  config.response_body_bytes = 256 * 1024;
  config.time_limit = sim::Seconds(60);
  sim::LossPattern pattern;
  pattern.DropWindow(sim::Direction::kServerToClient, sim::Millis(100), sim::Millis(1300));
  pattern.DropWindow(sim::Direction::kClientToServer, sim::Millis(100), sim::Millis(1300));
  config.loss = pattern;
  bool declared = false;
  const ExperimentResult result = RunExperiment(
      config, [&](const quic::ClientConnection&, const quic::ServerConnection& server) {
        for (const auto& note : server.trace().notes()) {
          if (note.detail.find("persistent congestion") != std::string::npos) declared = true;
        }
      });
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(declared);
}

// ---------- HTTP/3 variants of the loss scenarios ----------

TEST(Http3Scenarios, ServerFlightLossPenaltyHoldsUnderH3) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.http = http::Version::kHttp3;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 10 * 1024;

  ExperimentConfig wfc = config;
  wfc.behavior = quic::ServerBehavior::kWaitForCertificate;
  wfc.loss = FirstServerFlightTailLoss(wfc.behavior, config.certificate_bytes, config.http);
  ExperimentConfig iack = config;
  iack.behavior = quic::ServerBehavior::kInstantAck;
  iack.loss = FirstServerFlightTailLoss(iack.behavior, config.certificate_bytes, config.http);

  const double t_wfc = stats::Median(CollectResponseTtfbMs(wfc, 10));
  const double t_iack = stats::Median(CollectResponseTtfbMs(iack, 10));
  EXPECT_GT(t_iack - t_wfc, 120.0);
}

TEST(Http3Scenarios, ClientFlightLossImprovementHoldsUnderH3) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kNeqo;
  config.http = http::Version::kHttp3;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 10 * 1024;
  config.loss = SecondClientFlightLoss(config.client);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const double wfc = stats::Median(CollectResponseTtfbMs(config, 10));
  config.behavior = quic::ServerBehavior::kInstantAck;
  const double iack = stats::Median(CollectResponseTtfbMs(config, 10));
  EXPECT_GT(wfc - iack, 3.0);
}

TEST(Http3Scenarios, QuicheBehavesLikeOthersUnderH3) {
  // §4.2: "In our HTTP/3 measurements ... quiche behaves like all other
  // implementations" — no aborts, no quirk drops.
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuiche;
  config.http = http::Version::kHttp3;
  config.rtt = sim::Millis(9);
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.response_body_bytes = 10 * 1024;
  config.loss = FirstServerFlightTailLoss(config.behavior, config.certificate_bytes,
                                          config.http);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.client.aborted);
  EXPECT_EQ(result.client.datagrams_dropped_by_quirk, 0);
}

}  // namespace
}  // namespace quicer::core
