#include "quic/crypto_buffer.h"

#include <gtest/gtest.h>

namespace quicer::quic {
namespace {

CryptoFrame Chunk(std::uint64_t offset, std::uint32_t length,
                  tls::MessageType type = tls::MessageType::kCertificate) {
  return CryptoFrame{offset, length, type};
}

TEST(CryptoBuffer, SingleMessageCompletesWithOneFrame) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kClientHello, 280);
  EXPECT_FALSE(buffer.IsComplete(tls::MessageType::kClientHello));
  buffer.OnFrame(Chunk(0, 280, tls::MessageType::kClientHello));
  EXPECT_TRUE(buffer.IsComplete(tls::MessageType::kClientHello));
  EXPECT_TRUE(buffer.AllComplete());
}

TEST(CryptoBuffer, MessagesOccupyConsecutiveRanges) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kServerHello, 123);
  buffer.ExpectMessage(tls::MessageType::kEncryptedExtensions, 98);
  EXPECT_EQ(buffer.RangeOf(tls::MessageType::kServerHello), (std::pair<std::uint64_t, std::uint64_t>{0, 123}));
  EXPECT_EQ(buffer.RangeOf(tls::MessageType::kEncryptedExtensions),
            (std::pair<std::uint64_t, std::uint64_t>{123, 221}));
  EXPECT_EQ(buffer.TotalExpected(), 221u);
}

TEST(CryptoBuffer, PartialMessageIncomplete) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kCertificate, 1212);
  buffer.OnFrame(Chunk(0, 1000));
  EXPECT_FALSE(buffer.IsComplete(tls::MessageType::kCertificate));
  buffer.OnFrame(Chunk(1000, 212));
  EXPECT_TRUE(buffer.IsComplete(tls::MessageType::kCertificate));
}

TEST(CryptoBuffer, OutOfOrderChunksReassemble) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kCertificate, 300);
  buffer.OnFrame(Chunk(200, 100));
  buffer.OnFrame(Chunk(0, 100));
  EXPECT_FALSE(buffer.IsComplete(tls::MessageType::kCertificate));
  buffer.OnFrame(Chunk(100, 100));
  EXPECT_TRUE(buffer.IsComplete(tls::MessageType::kCertificate));
}

TEST(CryptoBuffer, DuplicateAndOverlappingChunksAreIdempotent) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kCertificate, 200);
  buffer.OnFrame(Chunk(0, 150));
  buffer.OnFrame(Chunk(0, 150));    // exact duplicate (retransmission)
  buffer.OnFrame(Chunk(100, 100));  // overlapping tail
  EXPECT_TRUE(buffer.IsComplete(tls::MessageType::kCertificate));
  EXPECT_EQ(buffer.ContiguousReceived(), 200u);
}

TEST(CryptoBuffer, CompletionPerMessageIsIndependent) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kServerHello, 100);
  buffer.ExpectMessage(tls::MessageType::kCertificate, 100);
  // Receive only the second message's range.
  buffer.OnFrame(Chunk(100, 100));
  EXPECT_FALSE(buffer.IsComplete(tls::MessageType::kServerHello));
  EXPECT_TRUE(buffer.IsComplete(tls::MessageType::kCertificate));
  EXPECT_FALSE(buffer.AllComplete());
  EXPECT_EQ(buffer.ContiguousReceived(), 0u);
}

TEST(CryptoBuffer, AllCompleteRequiresEverything) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kEncryptedExtensions, 98);
  buffer.ExpectMessage(tls::MessageType::kCertificate, 1212);
  buffer.ExpectMessage(tls::MessageType::kCertificateVerify, 304);
  buffer.ExpectMessage(tls::MessageType::kFinished, 36);
  std::uint64_t offset = 0;
  const std::uint64_t total = buffer.TotalExpected();
  while (offset < total) {
    EXPECT_FALSE(buffer.AllComplete());
    const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(500, total - offset));
    buffer.OnFrame(Chunk(offset, chunk));
    offset += chunk;
  }
  EXPECT_TRUE(buffer.AllComplete());
}

TEST(CryptoBuffer, UndeclaredMessageNeverComplete) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kServerHello, 100);
  EXPECT_FALSE(buffer.IsComplete(tls::MessageType::kFinished));
  EXPECT_EQ(buffer.RangeOf(tls::MessageType::kFinished),
            (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
}

TEST(CryptoBuffer, EmptyBufferNotAllComplete) {
  CryptoBuffer buffer;
  EXPECT_FALSE(buffer.AllComplete());  // nothing expected yet
}

TEST(CryptoBuffer, ZeroLengthFrameIgnored) {
  CryptoBuffer buffer;
  buffer.ExpectMessage(tls::MessageType::kServerHello, 10);
  buffer.OnFrame(Chunk(0, 0));
  EXPECT_EQ(buffer.ContiguousReceived(), 0u);
}

}  // namespace
}  // namespace quicer::quic
