#include "quic/cid_manager.h"

#include <gtest/gtest.h>

namespace quicer::quic {
namespace {

TEST(CidManager, StartsWithHandshakeCid) {
  CidManager manager;
  EXPECT_EQ(manager.active_count(), 1u);
  EXPECT_EQ(manager.retirement_count(), 0u);
}

TEST(CidManager, NewCidWithoutRetirePriorToAddsOnly) {
  CidManager manager;
  const auto result = manager.OnNewConnectionId(NewConnectionIdFrame{1, 0});
  EXPECT_TRUE(result.retirements.empty());
  EXPECT_FALSE(result.duplicate_retirement);
  EXPECT_EQ(manager.active_count(), 2u);
}

TEST(CidManager, RetirePriorToRetiresOlderSequences) {
  CidManager manager;
  const auto result = manager.OnNewConnectionId(NewConnectionIdFrame{1, 1});
  ASSERT_EQ(result.retirements.size(), 1u);
  EXPECT_EQ(result.retirements[0].sequence, 0u);
  EXPECT_FALSE(result.duplicate_retirement);
  EXPECT_EQ(manager.active_count(), 1u);
  EXPECT_EQ(manager.retirement_count(), 1u);
}

TEST(CidManager, DuplicateFrameTriggersDuplicateRetirement) {
  // The quiche Fig 6 anomaly: a retransmitted NEW_CONNECTION_ID asks the
  // receiver to retire an already-retired CID.
  CidManager manager;
  const auto first = manager.OnNewConnectionId(NewConnectionIdFrame{1, 1});
  EXPECT_FALSE(first.duplicate_retirement);
  const auto second = manager.OnNewConnectionId(NewConnectionIdFrame{1, 1});
  EXPECT_TRUE(second.duplicate_retirement);
  EXPECT_TRUE(second.retirements.empty());
}

TEST(CidManager, ProgressingSequencesNeverDuplicate) {
  CidManager manager;
  EXPECT_FALSE(manager.OnNewConnectionId(NewConnectionIdFrame{1, 1}).duplicate_retirement);
  EXPECT_FALSE(manager.OnNewConnectionId(NewConnectionIdFrame{2, 2}).duplicate_retirement);
  EXPECT_FALSE(manager.OnNewConnectionId(NewConnectionIdFrame{3, 3}).duplicate_retirement);
  EXPECT_EQ(manager.retirement_count(), 3u);
}

}  // namespace
}  // namespace quicer::quic
