#include "quic/ack_manager.h"

#include <gtest/gtest.h>

namespace quicer::quic {
namespace {

AckPolicy DefaultPolicy() { return AckPolicy{}; }

TEST(AckManager, DuplicateDetection) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  EXPECT_TRUE(manager.OnPacketReceived(0, true, 0));
  EXPECT_FALSE(manager.OnPacketReceived(0, true, 1));
  EXPECT_TRUE(manager.OnPacketReceived(1, true, 2));
}

TEST(AckManager, InitialSpaceAcksImmediately) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  manager.OnPacketReceived(0, /*ack_eliciting=*/true, 0);
  EXPECT_TRUE(manager.ShouldAckImmediately());
}

TEST(AckManager, NonAckElicitingNeverForcesAck) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  manager.OnPacketReceived(0, /*ack_eliciting=*/false, 0);
  EXPECT_FALSE(manager.ShouldAckImmediately());
  EXPECT_FALSE(manager.HasPendingAck());
}

TEST(AckManager, AppSpaceWaitsForPacketTolerance) {
  AckManager manager(PacketNumberSpace::kAppData, DefaultPolicy());
  manager.OnPacketReceived(0, true, 0);
  EXPECT_FALSE(manager.ShouldAckImmediately());
  manager.OnPacketReceived(1, true, sim::Millis(1));
  EXPECT_TRUE(manager.ShouldAckImmediately());
}

TEST(AckManager, AppSpaceAckDeadlineIsMaxAckDelay) {
  AckPolicy policy;
  policy.max_ack_delay = sim::Millis(25);
  AckManager manager(PacketNumberSpace::kAppData, policy);
  EXPECT_EQ(manager.AckDeadline(), sim::kNever);
  manager.OnPacketReceived(0, true, sim::Millis(10));
  EXPECT_EQ(manager.AckDeadline(), sim::Millis(35));
}

TEST(AckManager, BuildAckCoversReceivedRanges) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  manager.OnPacketReceived(0, true, 0);
  manager.OnPacketReceived(1, true, 0);
  manager.OnPacketReceived(3, true, 0);
  const auto ack = manager.BuildAck(sim::Millis(1));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->largest_acked, 3u);
  ASSERT_EQ(ack->ranges.size(), 2u);
  EXPECT_EQ(ack->ranges[0].first, 3u);  // descending order
  EXPECT_EQ(ack->ranges[1].first, 0u);
  EXPECT_EQ(ack->ranges[1].last, 1u);
  EXPECT_TRUE(ack->Acks(0));
  EXPECT_TRUE(ack->Acks(3));
  EXPECT_FALSE(ack->Acks(2));
}

TEST(AckManager, BuildAckResetsPendingState) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  manager.OnPacketReceived(0, true, 0);
  EXPECT_TRUE(manager.HasPendingAck());
  manager.BuildAck(0);
  EXPECT_FALSE(manager.HasPendingAck());
  EXPECT_FALSE(manager.ShouldAckImmediately());
}

TEST(AckManager, BuildAckEmptyWhenNothingReceived) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  EXPECT_FALSE(manager.BuildAck(0).has_value());
}

TEST(AckManager, ActualAckDelayReported) {
  AckPolicy policy;
  policy.report_mode = AckDelayReportMode::kActual;
  AckManager manager(PacketNumberSpace::kAppData, policy);
  manager.OnPacketReceived(0, true, sim::Millis(10));
  const auto ack = manager.BuildAck(sim::Millis(14));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->ack_delay, sim::Millis(4));
}

TEST(AckManager, ZeroReportModeAlwaysZero) {
  // Table 3: ngtcp2, quic-go, nginx, ... report ACK Delay 0.
  AckPolicy policy;
  policy.report_mode = AckDelayReportMode::kZero;
  AckManager manager(PacketNumberSpace::kInitial, policy);
  manager.OnPacketReceived(0, true, sim::Millis(10));
  const auto ack = manager.BuildAck(sim::Millis(30));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->ack_delay, 0);
}

TEST(AckManager, FixedReportModeUsesConfiguredValue) {
  // s2n-quic-style: a fixed delay exceeding the RTT (Table 3: 14-15 ms).
  AckPolicy policy;
  policy.report_mode = AckDelayReportMode::kFixed;
  policy.fixed_report_value = sim::Millis(14);
  AckManager manager(PacketNumberSpace::kInitial, policy);
  manager.OnPacketReceived(0, true, 0);
  const auto ack = manager.BuildAck(sim::Millis(1));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->ack_delay, sim::Millis(14));
}

TEST(AckManager, RangeMergingAcrossInsertOrders) {
  AckManager manager(PacketNumberSpace::kInitial, DefaultPolicy());
  // Insert out of order; ranges must merge to one.
  for (std::uint64_t pn : {4u, 0u, 2u, 1u, 3u}) manager.OnPacketReceived(pn, true, 0);
  const auto ack = manager.BuildAck(0);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->ranges.size(), 1u);
  EXPECT_EQ(ack->ranges[0].first, 0u);
  EXPECT_EQ(ack->ranges[0].last, 4u);
}

TEST(AckManager, LargestReceivedTracksMaximum) {
  AckManager manager(PacketNumberSpace::kAppData, DefaultPolicy());
  EXPECT_FALSE(manager.largest_received().has_value());
  manager.OnPacketReceived(7, true, 0);
  manager.OnPacketReceived(3, true, 0);
  EXPECT_EQ(*manager.largest_received(), 7u);
}

}  // namespace
}  // namespace quicer::quic
