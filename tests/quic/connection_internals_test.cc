// White-box tests of the connection machinery, wiring ClientConnection and
// ServerConnection directly over a Link (no experiment harness).
#include <gtest/gtest.h>

#include <memory>

#include "quic/client_connection.h"
#include "quic/server_connection.h"
#include "sim/link.h"

namespace quicer::quic {
namespace {

/// Minimal two-endpoint harness.
class Harness {
 public:
  explicit Harness(sim::Duration rtt = sim::Millis(10),
                   ServerBehavior behavior = ServerBehavior::kWaitForCertificate) {
    sim::Link::Config link_config;
    link_config.one_way_delay = rtt / 2;
    link_ = std::make_unique<sim::Link>(queue_, link_config, sim::Rng(1));

    ClientConfig client_config;
    client_config.base.tls.certificate = tls::kSmallCertificateBytes;
    client_ = std::make_unique<ClientConnection>(queue_, client_config, sim::Rng(2));

    ServerConfig server_config;
    server_config.behavior = behavior;
    server_config.base.tls.certificate = tls::kSmallCertificateBytes;
    server_config.cert_store.certificate_bytes = tls::kSmallCertificateBytes;
    server_config.signing = tls::SigningModel{sim::Millis(2.0), 0.0};
    server_config.response_body_bytes = 4096;
    server_ = std::make_unique<ServerConnection>(queue_, server_config, sim::Rng(3));

    client_->set_send_function([this](Datagram&& datagram) {
      auto shared = std::make_shared<Datagram>(std::move(datagram));
      link_->Send(sim::Direction::kClientToServer, shared->WireSize(),
                  [this, shared] { server_->OnDatagramReceived(*shared); });
    });
    server_->set_send_function([this](Datagram&& datagram) {
      auto shared = std::make_shared<Datagram>(std::move(datagram));
      link_->Send(sim::Direction::kServerToClient, shared->WireSize(),
                  [this, shared] { client_->OnDatagramReceived(*shared); });
    });
  }

  void Run(sim::Duration limit = sim::Seconds(10)) {
    while (queue_.PendingCount() > 0 && queue_.now() <= limit) {
      if (client_->response_complete()) break;
      queue_.RunOne();
    }
  }

  sim::EventQueue queue_;
  std::unique_ptr<sim::Link> link_;
  std::unique_ptr<ClientConnection> client_;
  std::unique_ptr<ServerConnection> server_;
};

TEST(ConnectionInternals, DirectWiringCompletesExchange) {
  Harness harness;
  harness.client_->Start();
  harness.Run();
  EXPECT_TRUE(harness.client_->response_complete());
  EXPECT_TRUE(harness.server_->handshake_confirmed());
}

TEST(ConnectionInternals, ClientHelloPaddedTo1200) {
  Harness harness;
  harness.client_->Start();
  const auto& packets = harness.client_->trace().packets();
  ASSERT_FALSE(packets.empty());
  EXPECT_GE(packets.front().size, kMinInitialDatagramSize);
  EXPECT_TRUE(packets.front().ack_eliciting);
}

TEST(ConnectionInternals, ServerFlightPacksIntoTwoDatagramsForSmallCert) {
  // The Fig 3 shape: Initial(ACK+SH) + Handshake head, then the rest —
  // exactly two datagrams for the 1,212 B certificate (CRYPTO frames split
  // at the datagram boundary).
  Harness harness;
  harness.client_->Start();
  // Flight is built at ~owd + processing + signing ≈ 7.3 ms and flushed
  // immediately; stop before the client's ACKs arrive back (~13 ms).
  harness.queue_.RunUntil(sim::Millis(11));
  EXPECT_TRUE(harness.server_->flight_built());
  EXPECT_EQ(harness.server_->metrics().datagrams_sent, 2u);
}

TEST(ConnectionInternals, WfcServerSuppressesInitialAckUntilFlight) {
  Harness harness(sim::Millis(10), ServerBehavior::kWaitForCertificate);
  harness.client_->Start();
  // Run until just after the CH reaches the server but before signing done.
  harness.queue_.RunUntil(sim::Millis(6));
  EXPECT_EQ(harness.server_->metrics().datagrams_sent, 0u)
      << "WFC server must not ack before the certificate flight";
  harness.Run();
  EXPECT_TRUE(harness.client_->response_complete());
}

TEST(ConnectionInternals, IackServerAcksBeforeFlight) {
  Harness harness(sim::Millis(10), ServerBehavior::kInstantAck);
  harness.client_->Start();
  harness.queue_.RunUntil(sim::Millis(6));
  EXPECT_EQ(harness.server_->metrics().datagrams_sent, 1u)
      << "IACK server sends exactly the instant ACK before the flight";
  EXPECT_FALSE(harness.server_->flight_built());
}

TEST(ConnectionInternals, InstantAckDatagramIsSmallAndNotAckEliciting) {
  Harness harness(sim::Millis(10), ServerBehavior::kInstantAck);
  harness.client_->Start();
  harness.queue_.RunUntil(sim::Millis(6));
  const qlog::PacketEvent* iack = nullptr;
  for (const auto& event : harness.server_->trace().packets()) {
    if (event.sent) {
      iack = &event;
      break;
    }
  }
  ASSERT_NE(iack, nullptr);
  EXPECT_EQ(iack->space, PacketNumberSpace::kInitial);
  EXPECT_FALSE(iack->ack_eliciting);
  EXPECT_LT(iack->size, 100u);
}

TEST(ConnectionInternals, ClientDiscardsInitialSpaceAfterSecondFlight) {
  Harness harness;
  harness.client_->Start();
  harness.Run();
  // After handshake completion, a late Initial-space event must be inert;
  // verified indirectly: the client's trace shows no Initial packets after
  // its second flight.
  sim::Time flight2_time = -1;
  for (const auto& event : harness.client_->trace().packets()) {
    if (event.sent && event.space == PacketNumberSpace::kHandshake) {
      flight2_time = event.time;
      break;
    }
  }
  ASSERT_GE(flight2_time, 0);
  for (const auto& event : harness.client_->trace().packets()) {
    if (event.sent && event.space == PacketNumberSpace::kInitial) {
      EXPECT_LE(event.time, flight2_time);
    }
  }
}

TEST(ConnectionInternals, HandshakeSpaceDiscardedOnConfirmation) {
  Harness harness;
  harness.client_->Start();
  harness.Run();
  // HANDSHAKE_DONE confirmed the client; all Handshake packets predate it.
  const sim::Time confirmed = harness.client_->metrics().handshake_confirmed;
  ASSERT_GE(confirmed, 0);
  for (const auto& event : harness.client_->trace().packets()) {
    if (event.sent && event.space == PacketNumberSpace::kHandshake) {
      EXPECT_LE(event.time, confirmed);
    }
  }
}

TEST(ConnectionInternals, ServerAcksRequestWithResponse) {
  // The request's ACK rides in the first response datagram (Flush bundles
  // pending ACKs with payload) — no standalone ack datagram.
  Harness harness;
  harness.client_->Start();
  harness.Run();
  const auto& events = harness.server_->trace().packets();
  // Find first sent AppData packet after the request arrived.
  sim::Time request_time = -1;
  for (const auto& event : events) {
    if (!event.sent && event.space == PacketNumberSpace::kAppData) {
      request_time = event.time;
      break;
    }
  }
  ASSERT_GE(request_time, 0);
  for (const auto& event : events) {
    if (event.sent && event.space == PacketNumberSpace::kAppData &&
        event.time >= request_time) {
      // Response data packet: ack-eliciting (carries STREAM).
      EXPECT_TRUE(event.ack_eliciting);
      break;
    }
  }
}

TEST(ConnectionInternals, MetricsTimelineOrdered) {
  Harness harness;
  harness.client_->Start();
  harness.Run();
  const auto& m = harness.client_->metrics();
  EXPECT_LE(m.start_time, m.first_ack_received);
  EXPECT_LE(m.first_ack_received, m.handshake_complete);
  EXPECT_LE(m.handshake_complete, m.handshake_confirmed);
  EXPECT_LE(m.first_stream_byte, m.response_complete);
}

TEST(ConnectionInternals, StreamBytesAccounting) {
  Harness harness;
  harness.client_->Start();
  harness.Run();
  EXPECT_EQ(harness.client_->metrics().stream_bytes_received,
            4096u + http::ResponseHeadBytes(http::Version::kHttp1));
  EXPECT_EQ(harness.server_->metrics().stream_bytes_received,
            http::RequestBytes(http::Version::kHttp1));
}

}  // namespace
}  // namespace quicer::quic
