// Tests of the instant-ACK effects the paper's evaluation rests on:
// amplification-limit escape (Fig 5), server-side recovery asymmetry
// (Fig 6), client-side recovery advantage (Fig 7), and the spurious
// retransmission zone (Fig 4).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/loss_scenarios.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

ExperimentConfig BaseConfig(clients::ClientImpl impl = clients::ClientImpl::kQuicGo) {
  ExperimentConfig config;
  config.client = impl;
  config.http = http::Version::kHttp1;
  config.rtt = sim::Millis(9);
  config.certificate_bytes = tls::kSmallCertificateBytes;
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 10 * 1024;
  return config;
}

double MedianTtfb(ExperimentConfig config, quic::ServerBehavior behavior, int reps = 15) {
  config.behavior = behavior;
  return stats::Median(CollectTtfbMs(std::move(config), reps));
}

// ---------- Fig 5: anti-amplification blocking ----------

TEST(AmplificationScenario, LargeCertBlocksWfcServer) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kNgtcp2);
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(200);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.server.amp_blocked_events, 0)
      << "5,113 B certificate must exceed the 3x budget of one padded Initial";
}

TEST(AmplificationScenario, IackImprovesTtfbForProbingClients) {
  // neqo and ngtcp2 showed the largest improvements (~10 ms) in Fig 5: their
  // default PTO (300 ms) exceeds Δt, so only the IACK-induced early probes
  // refill the amplification budget before the flight is ready.
  for (clients::ClientImpl impl : {clients::ClientImpl::kNeqo, clients::ClientImpl::kNgtcp2}) {
    ExperimentConfig config = BaseConfig(impl);
    config.certificate_bytes = tls::kLargeCertificateBytes;
    config.cert_fetch_delay = sim::Millis(200);
    const double wfc = MedianTtfb(config, quic::ServerBehavior::kWaitForCertificate);
    const double iack = MedianTtfb(config, quic::ServerBehavior::kInstantAck);
    EXPECT_LT(iack, wfc) << clients::Name(impl);
    EXPECT_GT(wfc - iack, 2.0) << clients::Name(impl);
    EXPECT_LT(wfc - iack, 40.0) << clients::Name(impl);
  }
}

TEST(AmplificationScenario, NonProbingClientsSeeLittleChange) {
  // mvfst and picoquic do not probe in response to an instant ACK (§4.1):
  // WFC and IACK end up close.
  for (clients::ClientImpl impl : {clients::ClientImpl::kMvfst, clients::ClientImpl::kPicoquic}) {
    ExperimentConfig config = BaseConfig(impl);
    config.certificate_bytes = tls::kLargeCertificateBytes;
    config.cert_fetch_delay = sim::Millis(200);
    const double wfc = MedianTtfb(config, quic::ServerBehavior::kWaitForCertificate);
    const double iack = MedianTtfb(config, quic::ServerBehavior::kInstantAck);
    EXPECT_LT(std::abs(wfc - iack), 8.0) << clients::Name(impl) << " wfc=" << wfc
                                         << " iack=" << iack;
  }
}

TEST(AmplificationScenario, IackCausesSpuriousProbesWhenDeltaExceedsPto) {
  // Δt = 200 ms >> client PTO (27 ms at 9 ms RTT): the client fires PTO
  // probes before the ServerHello can possibly arrive — the futile-load zone
  // of Fig 4 (which nonetheless helps against the amplification limit).
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kNgtcp2);
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(200);
  config.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client.probe_datagrams_sent, 0);
  EXPECT_GT(result.client.pto_expirations, 0);
}

TEST(AmplificationScenario, NoSpuriousProbesWhenDeltaWithinPto) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kNgtcp2);
  config.cert_fetch_delay = sim::Millis(5);  // well below 3 x 9 ms
  config.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.client.pto_expirations, 0);
}

// ---------- Fig 6: first server flight tail lost ----------

TEST(ServerFlightLoss, WfcRecoversFasterThanIack) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuicGo);
  ExperimentConfig wfc = config;
  wfc.loss = FirstServerFlightTailLoss(quic::ServerBehavior::kWaitForCertificate,
                                       config.certificate_bytes, config.http);
  ExperimentConfig iack = config;
  iack.loss = FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                        config.certificate_bytes, config.http);
  const double t_wfc = MedianTtfb(wfc, quic::ServerBehavior::kWaitForCertificate);
  const double t_iack = MedianTtfb(iack, quic::ServerBehavior::kInstantAck);
  // Paper: IACK needs ~177-188 ms longer (server default PTO 200 ms minus
  // the sample-based PTO WFC uses).
  EXPECT_GT(t_iack - t_wfc, 120.0) << "wfc=" << t_wfc << " iack=" << t_iack;
  EXPECT_LT(t_iack - t_wfc, 220.0) << "wfc=" << t_wfc << " iack=" << t_iack;
}

TEST(ServerFlightLoss, IackServerHasNoRttSample) {
  // The instant ACK is not ack-eliciting: with the rest of the flight lost,
  // the client never gives the server an RTT sample, so recovery waits for
  // the server's *default* PTO.
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuicGo);
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.loss = FirstServerFlightTailLoss(quic::ServerBehavior::kInstantAck,
                                          config.certificate_bytes, config.http);
  bool server_had_sample_at_retransmit = true;
  const ExperimentResult result = RunExperiment(
      config, [&](const quic::ClientConnection&, const quic::ServerConnection& server) {
        // By the end the server has samples; what matters is that its first
        // PTO expiry happened without one — visible as a default-PTO-scale
        // delay before the client's first CRYPTO.
        server_had_sample_at_retransmit = server.metrics().pto_expirations == 0;
      });
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(server_had_sample_at_retransmit);
  // First CRYPTO (ServerHello) reaches the client only after the server's
  // default PTO (200 ms).
  EXPECT_GT(result.client.first_crypto_received, sim::Millis(180));
}

TEST(ServerFlightLoss, WfcServerGetsSampleFromCoalescedAckSh) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuicGo);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  config.loss = FirstServerFlightTailLoss(quic::ServerBehavior::kWaitForCertificate,
                                          config.certificate_bytes, config.http);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // The client ACKs the coalesced ACK+SH datagram; the server's retransmit
  // runs on a sample-based PTO and the handshake finishes far below 200 ms.
  EXPECT_LT(result.TtfbMs(), 150.0);
  EXPECT_GT(result.server.rtt_samples, 0);
}

// ---------- Fig 7: second client flight lost ----------

TEST(ClientFlightLoss, IackImprovesTtfb) {
  for (clients::ClientImpl impl :
       {clients::ClientImpl::kQuicGo, clients::ClientImpl::kNeqo, clients::ClientImpl::kMvfst}) {
    ExperimentConfig config = BaseConfig(impl);
    config.loss = SecondClientFlightLoss(impl);
    const double wfc = MedianTtfb(config, quic::ServerBehavior::kWaitForCertificate);
    const double iack = MedianTtfb(config, quic::ServerBehavior::kInstantAck);
    // Paper: ~10-12 ms improvement (3x the server processing time).
    EXPECT_LT(iack, wfc) << clients::Name(impl);
    EXPECT_GT(wfc - iack, 3.0) << clients::Name(impl) << " wfc=" << wfc << " iack=" << iack;
    EXPECT_LT(wfc - iack, 30.0) << clients::Name(impl) << " wfc=" << wfc << " iack=" << iack;
  }
}

TEST(ClientFlightLoss, PicoquicDoesNotBenefit) {
  // picoquic ignores the Initial-space RTT sample and probes on its default
  // PTO in both modes.
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kPicoquic);
  config.loss = SecondClientFlightLoss(clients::ClientImpl::kPicoquic);
  const double wfc = MedianTtfb(config, quic::ServerBehavior::kWaitForCertificate);
  const double iack = MedianTtfb(config, quic::ServerBehavior::kInstantAck);
  EXPECT_LT(std::abs(wfc - iack), 5.0) << "wfc=" << wfc << " iack=" << iack;
}

TEST(ClientFlightLoss, ImprovementConstantAcrossRtts) {
  // §4.2: the absolute improvement is constant across RTTs (the relative
  // impact shrinks as the RTT grows).
  std::vector<double> gaps;
  for (double rtt_ms : {9.0, 20.0, 100.0}) {
    ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuicGo);
    config.rtt = sim::Millis(rtt_ms);
    config.loss = SecondClientFlightLoss(clients::ClientImpl::kQuicGo);
    const double wfc = MedianTtfb(config, quic::ServerBehavior::kWaitForCertificate);
    const double iack = MedianTtfb(config, quic::ServerBehavior::kInstantAck);
    gaps.push_back(wfc - iack);
  }
  for (double gap : gaps) {
    EXPECT_GT(gap, 2.0);
    EXPECT_LT(gap, 30.0);
  }
  // Constant within a few ms across an order of magnitude of RTT.
  EXPECT_LT(stats::Max(gaps) - stats::Min(gaps), 10.0);
}

}  // namespace
}  // namespace quicer::core
