// Integration tests for the documented implementation quirks (§4.1/§4.2):
// each quirk must change end-to-end behaviour the way the paper observed.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/loss_scenarios.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

ExperimentConfig BaseConfig(clients::ClientImpl impl) {
  ExperimentConfig config;
  config.client = impl;
  config.http = http::Version::kHttp1;
  config.rtt = sim::Millis(9);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 10 * 1024;
  return config;
}

// --- quiche: drops a coalesced datagram acking its PING probes (Fig 5) ---

TEST(QuicheQuirks, DropsCoalescedPingReplyUnderAmplificationScenario) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuiche);
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(200);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client.datagrams_dropped_by_quirk, 0)
      << "quiche must discard the flight datagram that acks its PING probe";
}

TEST(QuicheQuirks, DropMakesIackWorseThanWfc) {
  // The paper: "we observe negative effects when IACK is enabled".
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuiche);
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(200);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const double wfc = stats::Median(CollectTtfbMs(config, 10));
  config.behavior = quic::ServerBehavior::kInstantAck;
  const double iack = stats::Median(CollectTtfbMs(config, 10));
  EXPECT_GT(iack, wfc + 20.0) << "wfc=" << wfc << " iack=" << iack;
}

TEST(QuicheQuirks, NoDropInHttp3) {
  // "In our HTTP/3 measurements, we do not encounter this case."
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuiche);
  config.http = http::Version::kHttp3;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(200);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.client.datagrams_dropped_by_quirk, 0);
}

TEST(QuicheQuirks, SingleDatagramSecondFlight) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kQuiche);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // CH + single coalesced second flight + post-handshake acks; a
  // three-datagram client (quic-go) sends at least two more pre-handshake.
  ExperimentConfig reference = BaseConfig(clients::ClientImpl::kQuicGo);
  reference.behavior = quic::ServerBehavior::kWaitForCertificate;
  const ExperimentResult ref = RunExperiment(reference);
  EXPECT_LT(result.client.datagrams_sent, ref.client.datagrams_sent);
}

// --- go-x-net: erroneous smoothed-RTT initialisation ---

TEST(GoXNetQuirks, SometimesInitialisesSmoothedRttTo90Ms) {
  int wrong = 0;
  const int runs = 40;
  for (int i = 0; i < runs; ++i) {
    ExperimentConfig config = BaseConfig(clients::ClientImpl::kGoXNet);
    config.behavior = quic::ServerBehavior::kInstantAck;
    config.seed = 1000 + static_cast<std::uint64_t>(i);
    const ExperimentResult result = RunExperiment(config);
    if (!result.client_metric_updates.empty() &&
        result.client_metric_updates.front().smoothed_rtt == sim::Millis(90)) {
      ++wrong;
    }
  }
  // Profile probability is 0.4: expect a healthy share of both outcomes.
  EXPECT_GT(wrong, runs / 8);
  EXPECT_LT(wrong, runs * 7 / 8);
}

TEST(GoXNetQuirks, ReportedLatestRttStaysCorrectDespiteWrongSmoothed) {
  // §4.1: "reported RTT 33 ms, but smoothed RTT is initialized at 90 ms".
  for (int i = 0; i < 40; ++i) {
    ExperimentConfig config = BaseConfig(clients::ClientImpl::kGoXNet);
    config.behavior = quic::ServerBehavior::kInstantAck;
    config.seed = 2000 + static_cast<std::uint64_t>(i);
    const ExperimentResult result = RunExperiment(config);
    if (result.client_metric_updates.empty()) continue;
    const auto& first = result.client_metric_updates.front();
    if (first.smoothed_rtt == sim::Millis(90)) {
      EXPECT_LT(first.latest_rtt, sim::Millis(40));
      return;  // found the case the paper describes
    }
  }
  GTEST_SKIP() << "quirk did not fire in 40 seeds (probabilistic)";
}

// --- mvfst / picoquic: no probes in response to an instant ACK ---

TEST(MvfstQuirks, NoEarlyProbeAfterInstantAck) {
  // mvfst's first probe runs on its *default* PTO (100 ms), not on the
  // IACK-derived 27 ms PTO; ngtcp2 re-arms from the sample and probes early.
  auto first_probe_time = [](clients::ClientImpl impl) {
    ExperimentConfig config;
    config.client = impl;
    config.behavior = quic::ServerBehavior::kInstantAck;
    config.rtt = sim::Millis(9);
    config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
    config.certificate_bytes = tls::kLargeCertificateBytes;
    config.cert_fetch_delay = sim::Millis(200);
    config.response_body_bytes = 10 * 1024;
    sim::Time first = -1;
    const ExperimentResult result = RunExperiment(
        config, [&](const quic::ClientConnection& client, const quic::ServerConnection&) {
          for (const auto& note : client.trace().notes()) {
            if (note.category == "recovery" && note.detail.find("PTO expired") == 0) {
              first = note.time;
              break;
            }
          }
        });
    EXPECT_TRUE(result.completed) << clients::Name(impl);
    return first;
  };
  const sim::Time mvfst = first_probe_time(clients::ClientImpl::kMvfst);
  const sim::Time ngtcp2 = first_probe_time(clients::ClientImpl::kNgtcp2);
  ASSERT_GE(mvfst, 0);
  ASSERT_GE(ngtcp2, 0);
  EXPECT_GE(mvfst, sim::Millis(95));  // default-PTO-driven
  EXPECT_LE(ngtcp2, sim::Millis(60));  // sample-driven (3 x 9 ms + epsilon)
}

TEST(PicoquicQuirks, IgnoresInitialSpaceRttSample) {
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kPicoquic);
  config.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult result = RunExperiment(
      config, [](const quic::ClientConnection& client, const quic::ServerConnection&) {
        // The client finished the handshake; its estimator must not have
        // consumed the Initial-space (instant ACK) sample.
        EXPECT_EQ(client.metrics().rtt_samples, client.rtt().sample_count());
      });
  ASSERT_TRUE(result.completed);
  // first_rtt_sample is only recorded for consumed samples; the IACK one
  // (9 ms-ish, arriving first) must have been skipped.
  EXPECT_TRUE(result.client.first_rtt_sample < 0 ||
              result.client.first_rtt_sample > sim::Millis(9));
}

// --- aioquic: legacy rttvar formula shows up in exposed metrics ---

TEST(AioquicQuirks, RttVarDiffersFromRfcUnderAckDelay) {
  // Indirect check: the estimator formula flag is honoured end-to-end.
  ExperimentConfig config = BaseConfig(clients::ClientImpl::kAioquic);
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  config.response_body_bytes = 256 * 1024;  // enough acks to matter
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client.rtt_samples, 2);
}

}  // namespace
}  // namespace quicer::core
