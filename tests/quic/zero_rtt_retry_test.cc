// Tests for the §5 generalisation: instant ACK under 0-RTT and Retry
// handshakes.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.rtt = sim::Millis(9);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 10 * 1024;
  return config;
}

// ---------- 0-RTT ----------

TEST(ZeroRtt, CompletesAndBeats1RttByOneRtt) {
  ExperimentConfig one_rtt = BaseConfig();
  ExperimentConfig zero_rtt = BaseConfig();
  zero_rtt.mode = HandshakeMode::k0Rtt;
  const ExperimentResult r1 = RunExperiment(one_rtt);
  const ExperimentResult r0 = RunExperiment(zero_rtt);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r0.completed);
  // The request arrives with the ClientHello: the response starts ~1 RTT
  // earlier.
  const double saving = r1.TtfbMs() - r0.TtfbMs();
  EXPECT_GT(saving, 5.0);
  EXPECT_LT(saving, 15.0);
}

TEST(ZeroRtt, InstantAckStillPreventsPtoInflation) {
  // §5: "An instant ACK can also be used in case of 0-RTT handshakes to
  // prevent PTO inflation."
  ExperimentConfig wfc = BaseConfig();
  wfc.mode = HandshakeMode::k0Rtt;
  wfc.cert_fetch_delay = sim::Millis(25);
  ExperimentConfig iack = wfc;
  iack.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult r_wfc = RunExperiment(wfc);
  const ExperimentResult r_iack = RunExperiment(iack);
  ASSERT_TRUE(r_wfc.completed && r_iack.completed);
  EXPECT_GT(r_wfc.client.first_pto_period - r_iack.client.first_pto_period, sim::Millis(60));
}

TEST(ZeroRtt, EarlyDataCountsTowardsAmplificationBudget) {
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::k0Rtt;
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(50);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
}

TEST(ZeroRtt, WorksForAllClients) {
  for (clients::ClientImpl impl : clients::kAllClients) {
    ExperimentConfig config = BaseConfig();
    config.client = impl;
    config.mode = HandshakeMode::k0Rtt;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_TRUE(result.completed) << clients::Name(impl);
  }
}

// ---------- Retry ----------

TEST(Retry, CompletesWithOneExtraRoundTrip) {
  ExperimentConfig plain = BaseConfig();
  ExperimentConfig retry = BaseConfig();
  retry.mode = HandshakeMode::kRetry;
  const ExperimentResult r_plain = RunExperiment(plain);
  const ExperimentResult r_retry = RunExperiment(retry);
  ASSERT_TRUE(r_plain.completed && r_retry.completed);
  const double extra = r_retry.TtfbMs() - r_plain.TtfbMs();
  EXPECT_GT(extra, 7.0);   // ~1 RTT
  EXPECT_LT(extra, 14.0);
}

TEST(Retry, ClientSawExactlyOneRetry) {
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::kRetry;
  RunExperiment(config, [](const quic::ClientConnection& client,
                           const quic::ServerConnection&) {
    EXPECT_EQ(client.retries_seen(), 1);
  });
}

TEST(Retry, TokenLiftsAmplificationLimit) {
  // A validated address means the large-certificate flight is never
  // amplification-blocked.
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::kRetry;
  config.certificate_bytes = tls::kLargeCertificateBytes;
  config.cert_fetch_delay = sim::Millis(50);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.server.amp_blocked_events, 0);
}

TEST(Retry, RetryRoundTripProvidesFirstRttEstimate) {
  // §5: "the client may use this packet as the first RTT estimate".
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::kRetry;
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  config.cert_fetch_delay = sim::Millis(100);
  const ExperimentResult with_sample = RunExperiment(config);
  ASSERT_TRUE(with_sample.completed);
  // The Retry sample (~RTT) is taken long before the inflated ACK+SH.
  EXPECT_LE(with_sample.client.first_rtt_sample, sim::Millis(11));

  config.client_use_retry_rtt_sample = false;
  const ExperimentResult without_sample = RunExperiment(config);
  ASSERT_TRUE(without_sample.completed);
  EXPECT_GE(without_sample.client.first_rtt_sample, sim::Millis(100));
}

TEST(Retry, InstantAckStillReducesVariance) {
  // §5: "A subsequent instant ACK is still beneficial as it reduces RTT
  // variation." After the Retry sample, the IACK sample shrinks rttvar.
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::kRetry;
  config.cert_fetch_delay = sim::Millis(60);
  config.behavior = quic::ServerBehavior::kInstantAck;
  sim::Duration var_iack = 0;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection&) {
    var_iack = client.rtt().rttvar();
  });
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  sim::Duration var_wfc = 0;
  RunExperiment(config, [&](const quic::ClientConnection& client,
                            const quic::ServerConnection&) {
    var_wfc = client.rtt().rttvar();
  });
  EXPECT_LT(var_iack, var_wfc);
}

TEST(Retry, Combined0RttAfterRetryResendsEarlyData) {
  ExperimentConfig config = BaseConfig();
  config.mode = HandshakeMode::kRetry;
  // Retry + 0-RTT: enable both through the overrides.
  quic::ConnectionConfig base = clients::MakeClientConfig(config.client, config.http);
  config.client_config_override = base;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace quicer::core
