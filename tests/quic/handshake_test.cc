// End-to-end handshake tests exercising the full engine through the
// experiment harness (Fig 3 choreography).
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::core {
namespace {

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.http = http::Version::kHttp1;
  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  config.rtt = sim::Millis(9);
  config.certificate_bytes = tls::kSmallCertificateBytes;
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};  // deterministic
  config.response_body_bytes = 10 * 1024;
  return config;
}

TEST(Handshake, WfcCompletesWithoutLoss) {
  const ExperimentResult result = RunExperiment(BaseConfig());
  EXPECT_TRUE(result.completed) << "response never finished";
  EXPECT_FALSE(result.client.aborted) << result.client.abort_reason;
  EXPECT_GE(result.client.handshake_complete, 0);
  EXPECT_GE(result.client.first_stream_byte, 0);
  // TTFB for HTTP/1.1 ~ 2 RTT + server processing: CH -> flight -> request
  // -> response head. Allow generous bounds.
  EXPECT_GT(result.TtfbMs(), 15.0);
  EXPECT_LT(result.TtfbMs(), 40.0);
}

TEST(Handshake, IackCompletesWithoutLoss) {
  ExperimentConfig config = BaseConfig();
  config.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.client.aborted);
}

TEST(Handshake, InstantAckArrivesBeforeServerHello) {
  ExperimentConfig config = BaseConfig();
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.cert_fetch_delay = sim::Millis(20);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // The instant ACK arrives ~1 RTT after start; the ServerHello only after
  // the additional Δt.
  EXPECT_LT(result.client.first_ack_received, result.client.first_crypto_received);
  EXPECT_GE(result.client.first_crypto_received - result.client.first_ack_received,
            sim::Millis(15));
}

TEST(Handshake, WfcCoalescesAckWithServerHello) {
  ExperimentConfig config = BaseConfig();
  config.cert_fetch_delay = sim::Millis(20);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // Coalesced ACK+SH: both seen at the same processing instant.
  EXPECT_EQ(result.client.first_ack_received, result.client.first_crypto_received);
}

TEST(Handshake, WfcFirstRttSampleInflatedByDeltaT) {
  ExperimentConfig wfc = BaseConfig();
  wfc.cert_fetch_delay = sim::Millis(25);
  const ExperimentResult result = RunExperiment(wfc);
  ASSERT_TRUE(result.completed);
  // Sample = RTT + Δt + server processing, so clearly above RTT + Δt - 1ms.
  EXPECT_GE(result.client.first_rtt_sample, sim::Millis(9 + 25 - 1));
}

TEST(Handshake, IackFirstRttSampleIsPathRtt) {
  ExperimentConfig iack = BaseConfig();
  iack.behavior = quic::ServerBehavior::kInstantAck;
  iack.cert_fetch_delay = sim::Millis(25);
  const ExperimentResult result = RunExperiment(iack);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.client.first_rtt_sample, sim::Millis(9));
  EXPECT_LE(result.client.first_rtt_sample, sim::Millis(11));  // + processing slack
}

TEST(Handshake, FirstPtoImprovementIsRoughly3DeltaT) {
  ExperimentConfig wfc = BaseConfig();
  wfc.cert_fetch_delay = sim::Millis(25);
  ExperimentConfig iack = wfc;
  iack.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult r_wfc = RunExperiment(wfc);
  const ExperimentResult r_iack = RunExperiment(iack);
  ASSERT_TRUE(r_wfc.completed);
  ASSERT_TRUE(r_iack.completed);
  const sim::Duration diff = r_wfc.client.first_pto_period - r_iack.client.first_pto_period;
  // 3 x (Δt + signing) = 3 x ~27.8 ms ≈ 83 ms; allow a wide band.
  EXPECT_GT(diff, sim::Millis(60));
  EXPECT_LT(diff, sim::Millis(110));
}

TEST(Handshake, Http3TtfbAboutOneRttBelowHttp1) {
  ExperimentConfig h1 = BaseConfig();
  ExperimentConfig h3 = BaseConfig();
  h3.http = http::Version::kHttp3;
  const ExperimentResult r1 = RunExperiment(h1);
  const ExperimentResult r3 = RunExperiment(h3);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r3.completed);
  // H3's first server stream byte is the SETTINGS coalesced with the
  // handshake flight — about one RTT earlier than the H1 response.
  EXPECT_LT(r3.client.first_stream_byte, r1.client.first_stream_byte);
  const double gap = r1.TtfbMs() - r3.TtfbMs();
  EXPECT_GT(gap, 5.0);
  EXPECT_LT(gap, 15.0);
}

TEST(Handshake, HandshakeConfirmedOnBothSides) {
  ExperimentConfig config = BaseConfig();
  RunExperiment(config, [](const quic::ClientConnection& client,
                           const quic::ServerConnection& server) {
    EXPECT_TRUE(client.handshake_confirmed());
    EXPECT_TRUE(server.handshake_confirmed());
  });
}

TEST(Handshake, ServerNeverExceedsAmplificationBudgetPreValidation) {
  ExperimentConfig config = BaseConfig();
  config.certificate_bytes = tls::kLargeCertificateBytes;
  RunExperiment(config, [](const quic::ClientConnection&,
                           const quic::ServerConnection& server) {
    const auto& amp = server.amplification();
    // Post-run the server is validated; the invariant was enforced per-send.
    EXPECT_TRUE(amp.validated());
  });
}

TEST(Handshake, SecondFlightDatagramCountMatchesTable4) {
  // In a lossless run the client sends CH + its second flight; Table 4 gives
  // the per-implementation datagram count.
  for (clients::ClientImpl impl : clients::kAllClients) {
    ExperimentConfig config = BaseConfig();
    config.client = impl;
    int client_datagrams_at_request = -1;
    const ExperimentResult result = RunExperiment(config);
    ASSERT_TRUE(result.completed) << clients::Name(impl);
    (void)client_datagrams_at_request;
    // CH (1) + second flight (Table 4) + post-handshake acks. The flight
    // indices are 2..n+1, so at least 1+n datagrams were sent.
    EXPECT_GE(result.client.datagrams_sent,
              static_cast<std::uint64_t>(1 + clients::SecondFlightDatagrams(impl)))
        << clients::Name(impl);
  }
}

TEST(Handshake, DeterministicAcrossRuns) {
  ExperimentConfig config = BaseConfig();
  config.seed = 99;
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  EXPECT_EQ(a.client.first_stream_byte, b.client.first_stream_byte);
  EXPECT_EQ(a.client.datagrams_sent, b.client.datagrams_sent);
  EXPECT_EQ(a.server.datagrams_sent, b.server.datagrams_sent);
}

TEST(Handshake, TenMegabyteTransferCompletes) {
  ExperimentConfig config = BaseConfig();
  config.response_body_bytes = 10 * 1024 * 1024;
  config.rtt = sim::Millis(100);
  config.time_limit = sim::Seconds(60);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_TRUE(result.completed);
  // 10 MB over 10 Mbit/s is at least ~8.4 s.
  EXPECT_GT(result.client.response_complete, sim::Seconds(8));
  EXPECT_GT(result.client.rtt_samples, 10);
}

}  // namespace
}  // namespace quicer::core
