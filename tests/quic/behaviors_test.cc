// Behaviour tests for connection mechanics not covered elsewhere: probe
// content tuning, cross-space probe coalescing, delayed ACKs, and flow
// control back-pressure.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/loss_scenarios.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

// ---------- §5 tuning: ClientHello-retransmitting probes ----------

TEST(ProbeTuning, ProbeWithDataResendsClientHello) {
  // With the server silent past the client's default PTO, a probing client
  // configured per §5 re-sends the CRYPTO ClientHello instead of a PING.
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.cert_fetch_delay = sim::Millis(400);  // far beyond the client PTO
  config.client_probe_with_data = true;
  config.response_body_bytes = 4096;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client.probe_datagrams_sent, 0);
  // CH re-sends count as retransmitted frames; PING probes would not.
  EXPECT_GT(result.client.retransmitted_frames, 0);
}

TEST(ProbeTuning, DefaultProbesArePings) {
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.cert_fetch_delay = sim::Millis(400);
  config.client_probe_with_data = false;
  config.response_body_bytes = 4096;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.client.probe_datagrams_sent, 0);
  EXPECT_EQ(result.client.retransmitted_frames, 0);
}

// ---------- probe coalescing across spaces (the Fig 6 recovery path) ----------

TEST(ProbeCoalescing, ServerRetransmissionDeliversWholeFlightInOnePto) {
  // Fig 6 IACK: after one default-PTO expiry the server's probe datagrams
  // must carry the full flight (Initial SH + Handshake + 1-RTT tail), so the
  // client completes after a single recovery round.
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.rtt = sim::Millis(9);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 4096;
  config.loss = FirstServerFlightTailLoss(config.behavior, config.certificate_bytes,
                                          config.http);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // One server PTO round (~200 ms) suffices: TTFB stays well below two
  // backoff rounds (200 + 400 ms).
  EXPECT_LT(result.ResponseTtfbMs(), 400.0);
  EXPECT_GE(result.server.pto_expirations, 1);
}

// ---------- delayed ACKs ----------

TEST(DelayedAck, SoloAppPacketAckedAfterMaxAckDelay) {
  // A request is a single ack-eliciting 1-RTT packet: below the 2-packet
  // tolerance, so the server's ACK rides on its response immediately — but
  // if the response is slow (large signing on purpose via cert delay after
  // handshake? not possible) we instead verify the client side: the client
  // acks response data either at the tolerance or at max_ack_delay, never
  // later.
  ExperimentConfig config;
  config.rtt = sim::Millis(20);
  config.response_body_bytes = 1200;  // single data packet -> delayed ack path
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // The exchange closes (server gets its response acked) within TTFB +
  // max_ack_delay + 1 RTT.
  EXPECT_LT(sim::ToMillis(result.end_time), result.TtfbMs() + 25.0 + 25.0);
}

// ---------- connection-level flow control ----------

TEST(FlowControl, TinyWindowThrottlesTransfer) {
  // Shrink the client's advertised window so the server stalls on MAX_DATA
  // round trips: the transfer must still complete, but clearly slower.
  ExperimentConfig fast;
  fast.rtt = sim::Millis(20);
  fast.response_body_bytes = 256 * 1024;
  fast.time_limit = sim::Seconds(120);

  ExperimentConfig throttled = fast;
  quic::ConnectionConfig client = clients::MakeClientConfig(fast.client, fast.http);
  client.local_max_data = 32 * 1024;             // window << transfer size
  client.flow_update_interval_bytes = 16 * 1024;  // frequent small grants
  throttled.client_config_override = client;

  const ExperimentResult r_fast = RunExperiment(fast);
  const ExperimentResult r_throttled = RunExperiment(throttled);
  ASSERT_TRUE(r_fast.completed);
  ASSERT_TRUE(r_throttled.completed);
  EXPECT_GT(r_throttled.client.response_complete, r_fast.client.response_complete);
}

TEST(FlowControl, UpdateCadenceControlsClientRttSamples) {
  // Fig 11 mechanism in isolation: halving the update interval roughly
  // doubles the client's ack-eliciting sends and with them its RTT samples.
  auto samples_for = [](std::size_t interval) {
    ExperimentConfig config;
    config.rtt = sim::Millis(20);
    config.response_body_bytes = 1024 * 1024;
    config.time_limit = sim::Seconds(60);
    quic::ConnectionConfig client = clients::MakeClientConfig(config.client, config.http);
    client.flow_update_interval_bytes = interval;
    client.trace.capture_packets = false;
    config.client_config_override = client;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_TRUE(result.completed);
    return result.client.rtt_samples;
  };
  const int coarse = samples_for(128 * 1024);
  const int fine = samples_for(16 * 1024);
  EXPECT_GT(fine, coarse * 3);
}

// ---------- spurious retransmission accounting ----------

TEST(SpuriousAccounting, LateAckOfProbedPacketCountsAsSpurious) {
  // Delay (don't drop) the server flight far beyond the client PTO via a
  // huge Δt with IACK: the client's probes are all spurious by Fig 4's
  // definition, and the engine flags the server-side retransmission overlap.
  ExperimentConfig config;
  config.client = clients::ClientImpl::kNgtcp2;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.rtt = sim::Millis(9);
  config.cert_fetch_delay = sim::Millis(150);
  config.response_body_bytes = 4096;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  // Client PTO (27 ms) expires several times before the flight at 150 ms.
  EXPECT_GE(result.client.pto_expirations, 2);
}

TEST(SpuriousAccounting, NoSpuriousInCleanRun) {
  ExperimentConfig config;
  config.response_body_bytes = 10 * 1024;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.client.spurious_retransmits, 0);
  EXPECT_EQ(result.server.spurious_retransmits, 0);
  EXPECT_EQ(result.client.pto_expirations, 0);
  EXPECT_EQ(result.server.pto_expirations, 0);
}

}  // namespace
}  // namespace quicer::core
