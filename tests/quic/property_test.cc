// Parameterized property sweeps over the full engine: the paper's core
// identities must hold across the whole (RTT x Δt x client) grid, and the
// protocol invariants must survive every configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.h"
#include "core/pto_model.h"
#include "stats/stats.h"

namespace quicer::core {
namespace {

// ---------- first-PTO identities across the RTT x Δt grid ----------

class PtoIdentityGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PtoIdentityGrid, IackFirstPtoTracksPathRtt) {
  const auto [rtt_ms, delta_ms] = GetParam();
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.behavior = quic::ServerBehavior::kInstantAck;
  config.rtt = sim::Millis(rtt_ms);
  config.cert_fetch_delay = sim::Millis(delta_ms);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 4096;
  config.time_limit = sim::Seconds(60);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.completed) << "rtt=" << rtt_ms << " delta=" << delta_ms;
  // IACK first sample ~ path RTT + server initial processing (0.3 ms);
  // definitely independent of Δt.
  EXPECT_GE(result.client.first_rtt_sample, sim::Millis(rtt_ms));
  EXPECT_LE(result.client.first_rtt_sample, sim::Millis(rtt_ms + 2.0));
  // First PTO = 3x first sample.
  EXPECT_EQ(result.client.first_pto_period, 3 * result.client.first_rtt_sample);
}

TEST_P(PtoIdentityGrid, WfcFirstPtoInflatedByThreeDelta) {
  const auto [rtt_ms, delta_ms] = GetParam();
  ExperimentConfig config;
  config.client = clients::ClientImpl::kQuicGo;
  config.rtt = sim::Millis(rtt_ms);
  config.cert_fetch_delay = sim::Millis(delta_ms);
  config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
  config.response_body_bytes = 4096;
  config.time_limit = sim::Seconds(60);

  config.behavior = quic::ServerBehavior::kWaitForCertificate;
  const ExperimentResult wfc = RunExperiment(config);
  config.behavior = quic::ServerBehavior::kInstantAck;
  const ExperimentResult iack = RunExperiment(config);
  ASSERT_TRUE(wfc.completed && iack.completed);

  // WFC's first sample also absorbs the signing time (2.8 ms here); the
  // instant ACK goes out before the certificate fetch and signing begin.
  const double expected_gap_ms = 3.0 * (delta_ms + 2.8);
  const double gap_ms =
      sim::ToMillis(wfc.client.first_pto_period - iack.client.first_pto_period);
  // Allow slack for serialization differences; the 3(Δt+signing) structure
  // must show.
  EXPECT_NEAR(gap_ms, expected_gap_ms, 0.2 * expected_gap_ms + 3.0)
      << "rtt=" << rtt_ms << " delta=" << delta_ms;
}

INSTANTIATE_TEST_SUITE_P(RttDeltaGrid, PtoIdentityGrid,
                         ::testing::Combine(::testing::Values(1.0, 9.0, 25.0, 100.0),
                                            ::testing::Values(5.0, 10.0, 25.0, 50.0)));

// ---------- invariants across all clients and both modes ----------

struct ClientModeCase {
  clients::ClientImpl client;
  quic::ServerBehavior behavior;
  http::Version http;
};

class InvariantSweep : public ::testing::TestWithParam<ClientModeCase> {};

TEST_P(InvariantSweep, HandshakeCompletesAndInvariantsHold) {
  const ClientModeCase& param = GetParam();
  ExperimentConfig config;
  config.client = param.client;
  config.behavior = param.behavior;
  config.http = param.http;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 10 * 1024;
  const ExperimentResult result = RunExperiment(
      config, [&](const quic::ClientConnection& client, const quic::ServerConnection& server) {
        // Amplification safety: until validation the server sent at most 3x
        // what it received; afterwards the flag is set.
        EXPECT_TRUE(server.amplification().validated());
        // Both sides confirmed.
        EXPECT_TRUE(client.handshake_confirmed());
        EXPECT_TRUE(server.handshake_confirmed());
        // Packet numbers in the trace are strictly increasing per space.
        std::uint64_t last_pn[quic::kNumSpaces] = {0, 0, 0};
        bool seen[quic::kNumSpaces] = {false, false, false};
        for (const auto& event : client.trace().packets()) {
          if (!event.sent) continue;
          const int idx = quic::SpaceIndex(event.space);
          if (seen[idx]) {
            EXPECT_GT(event.packet_number, last_pn[idx]);
          }
          last_pn[idx] = event.packet_number;
          seen[idx] = true;
        }
      });
  ASSERT_TRUE(result.completed)
      << clients::Name(param.client) << "/" << ToString(param.behavior);
  // Timing sanity: ordered milestones.
  EXPECT_LE(result.client.first_ack_received, result.client.first_stream_byte);
  EXPECT_LE(result.client.first_stream_byte, result.client.response_complete);
  // All stream bytes arrived exactly once (high-watermark equals response).
  EXPECT_EQ(result.client.stream_bytes_received,
            10 * 1024 + http::ResponseHeadBytes(param.http) +
                (param.http == http::Version::kHttp3 ? http::kH3SettingsBytes : 0));
}

std::vector<ClientModeCase> AllCases() {
  std::vector<ClientModeCase> cases;
  for (clients::ClientImpl impl : clients::kAllClients) {
    for (quic::ServerBehavior behavior :
         {quic::ServerBehavior::kWaitForCertificate, quic::ServerBehavior::kInstantAck}) {
      cases.push_back({impl, behavior, http::Version::kHttp1});
      if (clients::SupportsHttp3(impl)) {
        cases.push_back({impl, behavior, http::Version::kHttp3});
      }
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ClientModeCase>& info) {
  std::string name(clients::Name(info.param.client));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += info.param.behavior == quic::ServerBehavior::kInstantAck ? "_iack" : "_wfc";
  name += info.param.http == http::Version::kHttp3 ? "_h3" : "_h1";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllClientsModes, InvariantSweep, ::testing::ValuesIn(AllCases()),
                         CaseName);

// ---------- TTFB monotonicity in Δt ----------

class DeltaMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(DeltaMonotonicity, TtfbNonDecreasingInDelta) {
  const double rtt_ms = static_cast<double>(GetParam());
  double previous = 0.0;
  for (double delta_ms : {0.0, 10.0, 50.0, 150.0}) {
    ExperimentConfig config;
    config.client = clients::ClientImpl::kQuicGo;
    config.behavior = quic::ServerBehavior::kWaitForCertificate;
    config.rtt = sim::Millis(rtt_ms);
    config.cert_fetch_delay = sim::Millis(delta_ms);
    config.signing = tls::SigningModel{sim::Millis(2.8), 0.0};
    config.response_body_bytes = 4096;
    const ExperimentResult result = RunExperiment(config);
    ASSERT_TRUE(result.completed);
    EXPECT_GE(result.TtfbMs() + 0.01, previous) << "delta=" << delta_ms;
    previous = result.TtfbMs();
  }
}

INSTANTIATE_TEST_SUITE_P(Rtts, DeltaMonotonicity, ::testing::Values(1, 9, 25, 100));

}  // namespace
}  // namespace quicer::core
