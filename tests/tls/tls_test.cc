#include <gtest/gtest.h>

#include "tls/cert_store.h"
#include "tls/messages.h"

namespace quicer::tls {
namespace {

TEST(HandshakeSizes, PaperCertificateSizes) {
  EXPECT_EQ(kSmallCertificateBytes, 1212u);
  EXPECT_EQ(kLargeCertificateBytes, 5113u);
}

TEST(HandshakeSizes, ServerFlightBytesSumsMessages) {
  HandshakeSizes sizes;
  sizes.certificate = kSmallCertificateBytes;
  EXPECT_EQ(sizes.ServerFlightBytes(), sizes.server_hello + sizes.encrypted_extensions +
                                           kSmallCertificateBytes + sizes.certificate_verify +
                                           sizes.finished);
}

TEST(HandshakeSizes, SmallCertFlightWithinAmplificationBudget) {
  HandshakeSizes sizes;
  sizes.certificate = kSmallCertificateBytes;
  EXPECT_LE(sizes.ServerFlightBytes(), 3u * 1200u);
}

TEST(HandshakeSizes, LargeCertFlightExceedsAmplificationBudget) {
  HandshakeSizes sizes;
  sizes.certificate = kLargeCertificateBytes;
  EXPECT_GT(sizes.ServerFlightBytes(), 3u * 1200u);
}

TEST(HandshakeSizes, SizeOfDispatch) {
  HandshakeSizes sizes;
  EXPECT_EQ(sizes.SizeOf(MessageType::kClientHello), sizes.client_hello);
  EXPECT_EQ(sizes.SizeOf(MessageType::kServerHello), sizes.server_hello);
  EXPECT_EQ(sizes.SizeOf(MessageType::kEncryptedExtensions), sizes.encrypted_extensions);
  EXPECT_EQ(sizes.SizeOf(MessageType::kCertificate), sizes.certificate);
  EXPECT_EQ(sizes.SizeOf(MessageType::kCertificateVerify), sizes.certificate_verify);
  EXPECT_EQ(sizes.SizeOf(MessageType::kFinished), sizes.finished);
}

TEST(SigningModel, DeterministicWhenSigmaZero) {
  SigningModel model{sim::Millis(2.5), 0.0};
  sim::Rng rng(1);
  EXPECT_EQ(model.Sample(rng), sim::Millis(2.5));
  EXPECT_EQ(model.Sample(rng), sim::Millis(2.5));
}

TEST(SigningModel, MedianApproximatesConfiguredValue) {
  SigningModel model{sim::Millis(3.0), 0.3};
  sim::Rng rng(7);
  std::vector<sim::Duration> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(model.Sample(rng));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  EXPECT_NEAR(static_cast<double>(samples[samples.size() / 2]),
              static_cast<double>(sim::Millis(3.0)), static_cast<double>(sim::Millis(0.3)));
}

TEST(CertStore, FetchResolvesAfterConfiguredDelay) {
  sim::EventQueue queue;
  CertStore::Config config;
  config.fetch_delay = sim::Millis(20);
  config.certificate_bytes = 1212;
  CertStore store(queue, config, sim::Rng(1));
  sim::Time done_at = -1;
  std::size_t bytes = 0;
  store.Fetch([&](const CertStore::Result& result) {
    done_at = queue.now();
    bytes = result.certificate_bytes;
  });
  queue.RunUntilIdle();
  EXPECT_EQ(done_at, sim::Millis(20));
  EXPECT_EQ(bytes, 1212u);
  EXPECT_EQ(store.fetch_count(), 1u);
}

TEST(CertStore, CachedFetchResolvesImmediately) {
  sim::EventQueue queue;
  CertStore::Config config;
  config.fetch_delay = sim::Millis(50);
  config.cached = true;
  CertStore store(queue, config, sim::Rng(1));
  sim::Time done_at = -1;
  store.Fetch([&](const CertStore::Result& result) {
    done_at = queue.now();
    EXPECT_EQ(result.delay, 0);
  });
  queue.RunUntilIdle();
  EXPECT_EQ(done_at, 0);
}

TEST(CertStore, JitterVariesDelayButStaysNonNegative) {
  sim::EventQueue queue;
  CertStore::Config config;
  config.fetch_delay = sim::Millis(5);
  config.fetch_jitter = sim::Millis(3);
  CertStore store(queue, config, sim::Rng(3));
  std::vector<sim::Duration> delays;
  for (int i = 0; i < 50; ++i) {
    store.Fetch([&](const CertStore::Result& result) { delays.push_back(result.delay); });
  }
  queue.RunUntilIdle();
  ASSERT_EQ(delays.size(), 50u);
  bool varied = false;
  for (sim::Duration d : delays) {
    EXPECT_GE(d, 0);
    if (d != delays[0]) varied = true;
  }
  EXPECT_TRUE(varied);
}

}  // namespace
}  // namespace quicer::tls
