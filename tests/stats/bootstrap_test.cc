#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/stats.h"

namespace quicer::stats {
namespace {

TEST(Bootstrap, EmptyInputYieldsZeroInterval) {
  const Interval ci = BootstrapMedianCI({});
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

TEST(Bootstrap, SingleValueDegenerate) {
  const Interval ci = BootstrapMedianCI({42.0});
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
}

TEST(Bootstrap, IntervalContainsSampleMedian) {
  std::vector<double> values;
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i) values.push_back(rng.Normal(50.0, 5.0));
  const double median = Median(values);
  const Interval ci = BootstrapMedianCI(values, 0.95);
  EXPECT_LE(ci.lo, median);
  EXPECT_GE(ci.hi, median);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  std::vector<double> values;
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) values.push_back(rng.Normal(10.0, 2.0));
  const Interval narrow = BootstrapMedianCI(values, 0.5);
  const Interval wide = BootstrapMedianCI(values, 0.99);
  EXPECT_LE(wide.lo, narrow.lo);
  EXPECT_GE(wide.hi, narrow.hi);
}

TEST(Bootstrap, ShrinksWithSampleSize) {
  sim::Rng rng(7);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.Normal(10.0, 2.0));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.Normal(10.0, 2.0));
  const Interval ci_small = BootstrapMedianCI(small);
  const Interval ci_large = BootstrapMedianCI(large);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Bootstrap, DeterministicForSeed) {
  std::vector<double> values{1, 5, 3, 8, 2, 9, 4, 7, 6};
  const Interval a = BootstrapMedianCI(values, 0.9, 300, 11);
  const Interval b = BootstrapMedianCI(values, 0.9, 300, 11);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, CoversTrueMedianMostOfTheTime) {
  // Coverage check: for Normal(0,1) samples of size 60, the 90 % CI should
  // contain the true median (0) in clearly more than half the trials.
  sim::Rng rng(13);
  int covered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> values;
    for (int i = 0; i < 60; ++i) values.push_back(rng.StandardNormal());
    const Interval ci = BootstrapMedianCI(values, 0.9, 300,
                                          static_cast<std::uint64_t>(t) + 1);
    if (ci.lo <= 0.0 && 0.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 75);
}

}  // namespace
}  // namespace quicer::stats
