#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace quicer::stats {
namespace {

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(5.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 11.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 18.0);
}

TEST(Histogram, MergeSameGeometryAddsBinCountsExactly) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.Add(0.5);
  a.Add(5.5);
  b.Add(5.9);
  b.Add(9.9);
  b.Add(-3.0);  // clamped into bin 0 by Add
  a.Merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(5), 2u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, MergeDifferentGeometryRemapsByBinCenter) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 20.0, 10);  // bin width 2: centers 1, 3, 5, ...
  b.Add(2.5);                  // bin 1, center 3 -> a's bin 3
  b.Add(15.0);                 // bin 7, center 15 -> clamped into a's bin 9
  a.Merge(b);
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 2u);  // total preserved even under clamping
}

TEST(Histogram, RenderEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.Render(), "(empty histogram)\n");
}

TEST(Histogram, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 20; ++i) h.Add(2.5);
  h.Add(7.5);
  const std::string out = h.Render(10);
  EXPECT_NE(out.find("2.000"), std::string::npos);
  EXPECT_NE(out.find("7.000"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace quicer::stats
