#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace quicer::stats {
namespace {

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(5.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 11.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 18.0);
}

TEST(Histogram, RenderEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.Render(), "(empty histogram)\n");
}

TEST(Histogram, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 20; ++i) h.Add(2.5);
  h.Add(7.5);
  const std::string out = h.Render(10);
  EXPECT_NE(out.find("2.000"), std::string::npos);
  EXPECT_NE(out.find("7.000"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace quicer::stats
