#include "stats/stats.h"

#include <gtest/gtest.h>

namespace quicer::stats {
namespace {

TEST(Median, OddCount) { EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0); }

TEST(Median, EvenCountInterpolates) { EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5); }

TEST(Median, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Median({}), 0.0); }

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(Median({42.0}), 42.0); }

TEST(Percentile, BoundsClampToMinMax) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75), 7.5);
}

TEST(MeanStdDev, KnownValues) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.138, 0.001);
}

TEST(StdDev, FewerThanTwoIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(Summarize, ConsistentFields) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Cdf, AtIsMonotoneAndBounded) {
  Cdf cdf({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.At(2.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.At(100.0), 1.0);
  double prev = 0.0;
  for (double x = 0; x < 12; x += 0.25) {
    const double p = cdf.At(x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Cdf, QuantileInvertsAt) {
  Cdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
}

TEST(Cdf, SampleLogXProducesRequestedPoints) {
  Cdf cdf({0.5, 1, 2, 4, 8, 16});
  const auto points = cdf.SampleLogX(0.1, 100.0, 20);
  ASSERT_EQ(points.size(), 20u);
  EXPECT_NEAR(points.front().first, 0.1, 1e-9);
  EXPECT_NEAR(points.back().first, 100.0, 1e-6);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
}

TEST(Running, MatchesBatchStatistics) {
  Running running;
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : v) running.Add(x);
  EXPECT_EQ(running.count(), v.size());
  EXPECT_DOUBLE_EQ(running.mean(), Mean(v));
  EXPECT_NEAR(running.stddev(), StdDev(v), 1e-9);
  EXPECT_DOUBLE_EQ(running.min(), 2.0);
  EXPECT_DOUBLE_EQ(running.max(), 9.0);
}

TEST(Running, EmptyIsZero) {
  Running running;
  EXPECT_EQ(running.count(), 0u);
  EXPECT_DOUBLE_EQ(running.mean(), 0.0);
  EXPECT_DOUBLE_EQ(running.variance(), 0.0);
}

}  // namespace
}  // namespace quicer::stats
