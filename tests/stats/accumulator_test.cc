#include "stats/accumulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "stats/stats.h"

namespace quicer::stats {
namespace {

TEST(Accumulator, EmptyIsZeroes) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.Median(), 0.0);
  EXPECT_TRUE(acc.exact());
}

TEST(Accumulator, ExactModeMatchesBatchStats) {
  const std::vector<double> values = {12.5, 3.0, 99.0, 7.25, 41.0, 3.0, 18.0};
  Accumulator acc;
  for (double v : values) acc.Add(v);

  ASSERT_TRUE(acc.exact());
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_DOUBLE_EQ(acc.min(), Min(values));
  EXPECT_DOUBLE_EQ(acc.max(), Max(values));
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(acc.stddev(), StdDev(values), 1e-12);
  // Percentiles must be bit-identical to the batch implementation: the
  // sweep engine's medians replace the benches' stats::Median calls.
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(acc.Percentile(p), Percentile(values, p)) << p;
  }
  EXPECT_EQ(acc.samples(), values);
}

TEST(Accumulator, OverflowKeepsMomentsExactAndPercentilesClose) {
  Accumulator acc(/*reservoir_capacity=*/128);
  std::vector<double> values;
  sim::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble() * 250.0;
    values.push_back(v);
    acc.Add(v);
  }

  EXPECT_FALSE(acc.exact());
  EXPECT_TRUE(acc.samples().empty());  // released on overflow: bounded memory
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_DOUBLE_EQ(acc.min(), Min(values));
  EXPECT_DOUBLE_EQ(acc.max(), Max(values));
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(acc.stddev(), StdDev(values), 1e-6);
  // Histogram percentiles: within one bin width of the exact answer.
  const double bin = 250.0 / static_cast<double>(Accumulator::kHistogramBins);
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(acc.Percentile(p), Percentile(values, p), 2.0 * bin) << p;
  }
}

TEST(Accumulator, OverflowWithConstantValues) {
  Accumulator acc(/*reservoir_capacity=*/4);
  for (int i = 0; i < 100; ++i) acc.Add(5.0);
  EXPECT_FALSE(acc.exact());
  EXPECT_DOUBLE_EQ(acc.Median(), 5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

// Merge of an exact-mode accumulator replays its samples: every statistic —
// moments, percentiles, retained samples — is bit-identical to one stream
// accumulated in the same order, at any cut point. The sweep engine's merge
// phase relies on this for byte-identical sharded exports.
TEST(Accumulator, MergeExactModeIsBitIdenticalToSingleStream) {
  std::vector<double> values;
  sim::Rng rng(11);
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble() * 40.0 - 5.0);

  Accumulator single;
  for (double v : values) single.Add(v);

  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{77}, values.size()}) {
    Accumulator left;
    Accumulator right;
    for (std::size_t i = 0; i < cut; ++i) left.Add(values[i]);
    for (std::size_t i = cut; i < values.size(); ++i) right.Add(values[i]);
    left.Merge(right);

    EXPECT_EQ(left.count(), single.count()) << cut;
    EXPECT_EQ(left.mean(), single.mean()) << cut;        // bit-identical
    EXPECT_EQ(left.stddev(), single.stddev()) << cut;    // bit-identical
    EXPECT_EQ(left.min(), single.min()) << cut;
    EXPECT_EQ(left.max(), single.max()) << cut;
    for (double p : {10.0, 50.0, 90.0}) {
      EXPECT_EQ(left.Percentile(p), single.Percentile(p)) << cut << " p" << p;
    }
    EXPECT_EQ(left.samples(), single.samples()) << cut;
  }
}

// Merging into an empty accumulator adopts the other wholesale — including
// an overflowed histogram state — again bit-identically.
TEST(Accumulator, MergeIntoEmptyAdoptsOtherState) {
  Accumulator other(/*reservoir_capacity=*/8);
  sim::Rng rng(5);
  for (int i = 0; i < 500; ++i) other.Add(rng.NextDouble() * 100.0);
  ASSERT_FALSE(other.exact());

  Accumulator empty(/*reservoir_capacity=*/8);
  empty.Merge(other);
  EXPECT_EQ(empty.count(), other.count());
  EXPECT_EQ(empty.mean(), other.mean());
  EXPECT_EQ(empty.stddev(), other.stddev());
  EXPECT_EQ(empty.Median(), other.Median());
}

// Merging when the combined count crosses the reservoir capacity overflows
// exactly like a single stream would (the replay goes through Add).
TEST(Accumulator, MergeAcrossOverflowBoundaryMatchesSingleStream) {
  const std::size_t capacity = 32;
  std::vector<double> values;
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) values.push_back(rng.NextDouble() * 10.0);

  Accumulator single(capacity);
  for (double v : values) single.Add(v);

  Accumulator left(capacity);
  Accumulator right(capacity);
  for (std::size_t i = 0; i < 20; ++i) left.Add(values[i]);
  for (std::size_t i = 20; i < values.size(); ++i) right.Add(values[i]);
  ASSERT_FALSE(right.exact());  // 80 > 32: right overflowed on its own

  // left (exact) absorbing an overflowed right goes through the moment /
  // histogram path: count/min/max exact, mean near-exact (Chan), histogram
  // percentiles within bounded error of the single-stream histogram.
  left.Merge(right);
  EXPECT_EQ(left.count(), single.count());
  EXPECT_EQ(left.min(), single.min());
  EXPECT_EQ(left.max(), single.max());
  EXPECT_NEAR(left.mean(), single.mean(), 1e-12);
  EXPECT_NEAR(left.stddev(), single.stddev(), 1e-9);
  const double bin = 10.0 / static_cast<double>(Accumulator::kHistogramBins);
  for (double p : {10.0, 50.0, 90.0}) {
    EXPECT_NEAR(left.Percentile(p), single.Percentile(p), 4.0 * bin) << p;
  }
}

// Two independently-overflowed accumulators: count/min/max stay exact,
// moments combine by Chan's formulas, percentiles carry bounded histogram
// error (the documented overflow-mode contract).
TEST(Accumulator, MergeOverflowedHalvesBoundedPercentileError) {
  const std::size_t capacity = 64;
  std::vector<double> values;
  sim::Rng rng(17);
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextDouble() * 200.0);

  Accumulator single(capacity);
  Accumulator left(capacity);
  Accumulator right(capacity);
  for (std::size_t i = 0; i < values.size(); ++i) {
    single.Add(values[i]);
    (i < values.size() / 2 ? left : right).Add(values[i]);
  }
  ASSERT_FALSE(left.exact());
  ASSERT_FALSE(right.exact());

  left.Merge(right);
  EXPECT_EQ(left.count(), single.count());
  EXPECT_EQ(left.min(), single.min());
  EXPECT_EQ(left.max(), single.max());
  EXPECT_NEAR(left.mean(), single.mean(), 1e-10);
  EXPECT_NEAR(left.stddev(), single.stddev(), 1e-7);
  const std::vector<double> sorted_error_bound = {10.0, 50.0, 90.0};
  const double bin = 200.0 / static_cast<double>(Accumulator::kHistogramBins);
  for (double p : sorted_error_bound) {
    EXPECT_NEAR(left.Percentile(p), Percentile(values, p), 4.0 * bin) << p;
  }
}

// state() / FromState round-trips reproduce the accumulator bit-identically
// in both modes — the property the sweep partial files depend on.
TEST(Accumulator, StateRoundTripIsBitIdentical) {
  sim::Rng rng(23);
  for (const std::size_t capacity : {std::size_t{4096}, std::size_t{16}}) {
    Accumulator acc(capacity);
    for (int i = 0; i < 100; ++i) acc.Add(rng.NextDouble() * 30.0);
    const Accumulator restored = Accumulator::FromState(acc.state());
    EXPECT_EQ(restored.exact(), acc.exact());
    EXPECT_EQ(restored.count(), acc.count());
    EXPECT_EQ(restored.mean(), acc.mean());
    EXPECT_EQ(restored.stddev(), acc.stddev());
    EXPECT_EQ(restored.min(), acc.min());
    EXPECT_EQ(restored.max(), acc.max());
    for (double p : {25.0, 50.0, 75.0}) {
      EXPECT_EQ(restored.Percentile(p), acc.Percentile(p)) << capacity << " p" << p;
    }
    EXPECT_EQ(restored.samples(), acc.samples());
  }
}

TEST(Accumulator, SummarizeMatchesStatsShape) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  Accumulator acc;
  for (double v : values) acc.Add(v);
  const Summary from_acc = acc.Summarize();
  const Summary batch = Summarize(values);
  EXPECT_EQ(from_acc.count, batch.count);
  EXPECT_DOUBLE_EQ(from_acc.min, batch.min);
  EXPECT_DOUBLE_EQ(from_acc.p25, batch.p25);
  EXPECT_DOUBLE_EQ(from_acc.median, batch.median);
  EXPECT_DOUBLE_EQ(from_acc.p75, batch.p75);
  EXPECT_DOUBLE_EQ(from_acc.max, batch.max);
  EXPECT_NEAR(from_acc.mean, batch.mean, 1e-12);
  EXPECT_NEAR(from_acc.stddev, batch.stddev, 1e-12);
}

}  // namespace
}  // namespace quicer::stats
