#include "stats/accumulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "stats/stats.h"

namespace quicer::stats {
namespace {

TEST(Accumulator, EmptyIsZeroes) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.Median(), 0.0);
  EXPECT_TRUE(acc.exact());
}

TEST(Accumulator, ExactModeMatchesBatchStats) {
  const std::vector<double> values = {12.5, 3.0, 99.0, 7.25, 41.0, 3.0, 18.0};
  Accumulator acc;
  for (double v : values) acc.Add(v);

  ASSERT_TRUE(acc.exact());
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_DOUBLE_EQ(acc.min(), Min(values));
  EXPECT_DOUBLE_EQ(acc.max(), Max(values));
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-12);
  EXPECT_NEAR(acc.stddev(), StdDev(values), 1e-12);
  // Percentiles must be bit-identical to the batch implementation: the
  // sweep engine's medians replace the benches' stats::Median calls.
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(acc.Percentile(p), Percentile(values, p)) << p;
  }
  EXPECT_EQ(acc.samples(), values);
}

TEST(Accumulator, OverflowKeepsMomentsExactAndPercentilesClose) {
  Accumulator acc(/*reservoir_capacity=*/128);
  std::vector<double> values;
  sim::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble() * 250.0;
    values.push_back(v);
    acc.Add(v);
  }

  EXPECT_FALSE(acc.exact());
  EXPECT_TRUE(acc.samples().empty());  // released on overflow: bounded memory
  EXPECT_EQ(acc.count(), values.size());
  EXPECT_DOUBLE_EQ(acc.min(), Min(values));
  EXPECT_DOUBLE_EQ(acc.max(), Max(values));
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(acc.stddev(), StdDev(values), 1e-6);
  // Histogram percentiles: within one bin width of the exact answer.
  const double bin = 250.0 / static_cast<double>(Accumulator::kHistogramBins);
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(acc.Percentile(p), Percentile(values, p), 2.0 * bin) << p;
  }
}

TEST(Accumulator, OverflowWithConstantValues) {
  Accumulator acc(/*reservoir_capacity=*/4);
  for (int i = 0; i < 100; ++i) acc.Add(5.0);
  EXPECT_FALSE(acc.exact());
  EXPECT_DOUBLE_EQ(acc.Median(), 5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, SummarizeMatchesStatsShape) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  Accumulator acc;
  for (double v : values) acc.Add(v);
  const Summary from_acc = acc.Summarize();
  const Summary batch = Summarize(values);
  EXPECT_EQ(from_acc.count, batch.count);
  EXPECT_DOUBLE_EQ(from_acc.min, batch.min);
  EXPECT_DOUBLE_EQ(from_acc.p25, batch.p25);
  EXPECT_DOUBLE_EQ(from_acc.median, batch.median);
  EXPECT_DOUBLE_EQ(from_acc.p75, batch.p75);
  EXPECT_DOUBLE_EQ(from_acc.max, batch.max);
  EXPECT_NEAR(from_acc.mean, batch.mean, 1e-12);
  EXPECT_NEAR(from_acc.stddev, batch.stddev, 1e-12);
}

}  // namespace
}  // namespace quicer::stats
