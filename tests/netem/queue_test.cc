#include "netem/queue.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace quicer::netem {
namespace {

using sim::Millis;

QueueModel Fifo(std::size_t depth_pkts = 0, std::size_t depth_bytes = 0) {
  QueueModel model;
  model.kind = QueueModel::Kind::kFifo;
  model.depth_pkts = depth_pkts;
  model.depth_bytes = depth_bytes;
  return model;
}

// 1250 wire bytes at 10 Mbit/s serialize in exactly 1 ms.
constexpr double kBps = 10e6;
constexpr std::size_t kPkt = 1250;

TEST(BottleneckQueue, DefaultModelIsInactive) {
  BottleneckQueue queue;
  EXPECT_FALSE(queue.active());
}

TEST(BottleneckQueue, UnboundedDeparturesMatchTheBusyClock) {
  BottleneckQueue queue(Fifo());
  ASSERT_TRUE(queue.active());
  // Back-to-back arrivals at t=0: departures 1, 2, 3 ms — exactly the
  // legacy max(now, tx_free) + serialization arithmetic.
  EXPECT_EQ(queue.Enqueue(0, kPkt, kBps), std::optional<sim::Time>(Millis(1)));
  EXPECT_EQ(queue.Enqueue(0, kPkt, kBps), std::optional<sim::Time>(Millis(2)));
  EXPECT_EQ(queue.Enqueue(0, kPkt, kBps), std::optional<sim::Time>(Millis(3)));
  EXPECT_EQ(queue.occupancy_pkts(), 3u);
  // An arrival after the line went idle starts its own serialization.
  EXPECT_EQ(queue.Enqueue(Millis(10), kPkt, kBps), std::optional<sim::Time>(Millis(11)));
  EXPECT_EQ(queue.occupancy_pkts(), 1u);  // earlier departures drained
  EXPECT_EQ(queue.stats().dropped, 0u);
}

TEST(BottleneckQueue, PacketDepthTailDrops) {
  BottleneckQueue queue(Fifo(/*depth_pkts=*/2));
  EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());
  EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());
  EXPECT_FALSE(queue.Enqueue(0, kPkt, kBps).has_value());  // full: 2 queued
  EXPECT_EQ(queue.stats().dropped, 1u);
  EXPECT_EQ(queue.occupancy_pkts(), 2u);
  // After the head departs (t = 1 ms) there is room again.
  EXPECT_TRUE(queue.Enqueue(Millis(1), kPkt, kBps).has_value());
  EXPECT_EQ(queue.stats().dropped, 1u);
}

TEST(BottleneckQueue, ByteDepthTailDrops) {
  BottleneckQueue queue(Fifo(/*depth_pkts=*/0, /*depth_bytes=*/3000));
  EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());   // 1250
  EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());   // 2500
  EXPECT_FALSE(queue.Enqueue(0, kPkt, kBps).has_value());  // 3750 > 3000
  EXPECT_TRUE(queue.Enqueue(0, 500, kBps).has_value());    // 3000 fits exactly
  EXPECT_EQ(queue.stats().dropped, 1u);
  EXPECT_EQ(queue.occupancy_bytes(), 3000u);
}

TEST(BottleneckQueue, DropDoesNotAdvanceTheDepartureClock) {
  BottleneckQueue queue(Fifo(/*depth_pkts=*/1));
  EXPECT_EQ(queue.Enqueue(0, kPkt, kBps), std::optional<sim::Time>(Millis(1)));
  EXPECT_FALSE(queue.Enqueue(0, kPkt, kBps).has_value());
  // The dropped datagram consumed no line time: after the queue drains, a
  // fresh arrival at t = 1 ms departs at 2 ms, not 3 ms.
  EXPECT_EQ(queue.Enqueue(Millis(1), kPkt, kBps), std::optional<sim::Time>(Millis(2)));
}

TEST(BottleneckQueue, StatsTrackHighWaterMarks) {
  BottleneckQueue queue(Fifo(/*depth_pkts=*/8));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());
  EXPECT_EQ(queue.stats().max_pkts, 5u);
  EXPECT_EQ(queue.stats().max_bytes, 5u * kPkt);
  // Draining does not lower the high-water marks.
  EXPECT_TRUE(queue.Enqueue(Millis(20), kPkt, kBps).has_value());
  EXPECT_EQ(queue.occupancy_pkts(), 1u);
  EXPECT_EQ(queue.stats().max_pkts, 5u);
}

TEST(BottleneckQueue, CodelHookBehavesAsTailDropToday) {
  QueueModel model = Fifo(/*depth_pkts=*/1);
  model.aqm = QueueModel::Aqm::kCoDel;
  BottleneckQueue queue(model);
  EXPECT_TRUE(queue.Enqueue(0, kPkt, kBps).has_value());
  EXPECT_FALSE(queue.Enqueue(0, kPkt, kBps).has_value());
  EXPECT_EQ(queue.stats().dropped, 1u);
}

}  // namespace
}  // namespace quicer::netem
