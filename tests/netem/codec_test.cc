#include "netem/codec.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "core/json.h"
#include "sim/time.h"

namespace quicer::netem {
namespace {

std::optional<LinkModel> Parse(const std::string& text, std::string* error_out = nullptr) {
  std::string error;
  const std::optional<core::JsonValue> json = core::JsonValue::Parse(text, &error);
  EXPECT_TRUE(json.has_value()) << error;
  if (!json.has_value()) return std::nullopt;
  LinkModel model;
  if (!ParseLinkModel(*json, model, error)) {
    if (error_out != nullptr) *error_out = error;
    return std::nullopt;
  }
  return model;
}

/// parse(text) succeeds and re-serializes to `canonical`; a second
/// parse(write(x)) pass reproduces the same bytes (codec stability — the
/// spec content-hash depends on it).
void ExpectCanonical(const std::string& text, const std::string& canonical) {
  const std::optional<LinkModel> model = Parse(text);
  ASSERT_TRUE(model.has_value()) << text;
  EXPECT_EQ(LinkModelJson(*model), canonical) << text;
  const std::optional<LinkModel> again = Parse(canonical);
  ASSERT_TRUE(again.has_value()) << canonical;
  EXPECT_EQ(*again, *model);
  EXPECT_EQ(LinkModelJson(*again), canonical);
}

TEST(LinkModelCodec, DefaultIsEmptyObject) {
  EXPECT_EQ(LinkModelJson(LinkModel{}), "{}");
  ExpectCanonical("{}", "{}");
}

TEST(LinkModelCodec, BernoulliRoundTrips) {
  ExpectCanonical(R"({"loss": {"up": {"bernoulli": {"rate": 0.01}}}})",
                  R"({"loss": {"up": {"bernoulli": {"rate": 0.01}}}})");
}

TEST(LinkModelCodec, GilbertOmitsClassicStateLossRates) {
  const std::string canonical = R"({"loss": {"down": {"gilbert": {"p": 0.05, "r": 0.25}}}})";
  ExpectCanonical(canonical, canonical);
  const std::optional<LinkModel> model = Parse(canonical);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->loss[kDown].kind, LossModel::Kind::kGilbertElliott);
  EXPECT_EQ(model->loss[kDown].loss_good, 0.0);
  EXPECT_EQ(model->loss[kDown].loss_bad, 1.0);
  EXPECT_TRUE(model->loss[kUp].IsDefault());
  // Non-classic state loss rates are preserved.
  ExpectCanonical(
      R"({"loss": {"down": {"gilbert": {"p": 0.05, "r": 0.25, "loss_good": 0.01, "loss_bad": 0.9}}}})",
      R"({"loss": {"down": {"gilbert": {"p": 0.05, "r": 0.25, "loss_good": 0.01, "loss_bad": 0.9}}}})");
}

TEST(LinkModelCodec, BothExpandsToUpAndDown) {
  const std::optional<LinkModel> model =
      Parse(R"({"loss": {"both": {"gilbert": {"p": 0.1, "r": 0.4}}}})");
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->loss[kUp], model->loss[kDown]);
  EXPECT_EQ(model->loss[kUp].kind, LossModel::Kind::kGilbertElliott);
  // The writer always expands.
  EXPECT_EQ(LinkModelJson(*model),
            R"({"loss": {"up": {"gilbert": {"p": 0.1, "r": 0.4}}, "down": {"gilbert": {"p": 0.1, "r": 0.4}}}})");
}

TEST(LinkModelCodec, BothExcludesPerDirectionKeys) {
  std::string error;
  EXPECT_FALSE(Parse(R"({"loss": {"both": {"bernoulli": {"rate": 0.1}},
                                  "up": {"bernoulli": {"rate": 0.2}}}})",
                     &error)
                   .has_value());
  EXPECT_NE(error.find("both"), std::string::npos) << error;
}

TEST(LinkModelCodec, QueueRoundTrips) {
  ExpectCanonical(R"({"queue": {"down": {"depth_pkts": 12}}})",
                  R"({"queue": {"down": {"depth_pkts": 12}}})");
  ExpectCanonical(R"({"queue": {"both": {"depth_pkts": 4, "depth_bytes": 65536, "aqm": "codel"}}})",
                  R"({"queue": {"up": {"depth_pkts": 4, "depth_bytes": 65536, "aqm": "codel"}, )"
                  R"("down": {"depth_pkts": 4, "depth_bytes": 65536, "aqm": "codel"}}})");
  // {} selects the unbounded tail-drop FIFO (still distinct from the
  // default transmitter clock).
  const std::optional<LinkModel> model = Parse(R"({"queue": {"up": {}}})");
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->queue[kUp].kind, QueueModel::Kind::kFifo);
  EXPECT_EQ(model->queue[kUp].depth_pkts, 0u);
  EXPECT_TRUE(model->queue[kDown].IsDefault());
}

TEST(LinkModelCodec, PathRoundTripsWithMicrosecondPrecision) {
  const std::string canonical =
      R"({"path": {"up_bps": 2000000, "down_bps": 10000000, "up_delay_ms": 30, "down_delay_ms": 9.5, "down_jitter_ms": 0.25}})";
  ExpectCanonical(canonical, canonical);
  const std::optional<LinkModel> model = Parse(canonical);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->path[kUp].bandwidth_bps, std::optional<double>(2e6));
  EXPECT_EQ(model->path[kUp].one_way_delay, std::optional<sim::Duration>(sim::Millis(30)));
  EXPECT_EQ(model->path[kDown].one_way_delay,
            std::optional<sim::Duration>(sim::Duration(9500)));
  EXPECT_EQ(model->path[kDown].jitter, std::optional<sim::Duration>(sim::Duration(250)));
  EXPECT_FALSE(model->path[kUp].jitter.has_value());
}

TEST(LinkModelCodec, FullModelRoundTrips) {
  ExpectCanonical(
      R"({"loss": {"both": {"bernoulli": {"rate": 0.02}}},
          "queue": {"down": {"depth_pkts": 8}},
          "path": {"up_bps": 1000000, "down_delay_ms": 40}})",
      R"({"loss": {"up": {"bernoulli": {"rate": 0.02}}, "down": {"bernoulli": {"rate": 0.02}}}, )"
      R"("queue": {"down": {"depth_pkts": 8}}, )"
      R"("path": {"up_bps": 1000000, "down_delay_ms": 40}})");
}

TEST(LinkModelCodec, RejectsInvalidDocuments) {
  struct Case {
    const char* text;
    const char* needle;  // expected substring of the error
  };
  const Case cases[] = {
      {R"(["not", "an", "object"])", "object"},
      {R"({"unknown": 1})", "unknown"},
      {R"({"loss": {"sideways": {}}})", "sideways"},
      {R"({"loss": {"up": {}}})", "loss.up"},
      {R"({"loss": {"up": {"bernoulli": {"rate": 1.5}}}})", "rate"},
      {R"({"loss": {"up": {"bernoulli": {"rate": -0.1}}}})", "rate"},
      {R"({"loss": {"up": {"bernoulli": {}}}})", "rate"},
      {R"({"loss": {"up": {"gilbert": {"p": 0.1}}}})", "r"},
      {R"({"loss": {"up": {"gilbert": {"p": 2, "r": 0.5}}}})", "p"},
      {R"({"loss": {"up": {"gilbert": {"p": 0.1, "r": 0.5, "bogus": 1}}}})", "bogus"},
      {R"({"queue": {"up": {"depth_pkts": -1}}})", "depth_pkts"},
      {R"({"queue": {"up": {"depth_pkts": 1.5}}})", "depth_pkts"},
      {R"({"queue": {"up": {"aqm": "red"}}})", "aqm"},
      {R"({"path": {"up_bps": 0}})", "up_bps"},
      {R"({"path": {"up_bps": -5}})", "up_bps"},
      {R"({"path": {"sideways_ms": 1}})", "sideways_ms"},
      {R"({"path": {"up_delay_ms": -1}})", "up_delay_ms"},
  };
  for (const Case& c : cases) {
    std::string error;
    EXPECT_FALSE(Parse(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.text << " -> \"" << error << "\"";
  }
}

}  // namespace
}  // namespace quicer::netem
