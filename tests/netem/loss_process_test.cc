#include "netem/loss_process.h"

#include <gtest/gtest.h>

#include <vector>

namespace quicer::netem {
namespace {

LossModel Bernoulli(double rate) {
  LossModel model;
  model.kind = LossModel::Kind::kBernoulli;
  model.rate = rate;
  return model;
}

LossModel Gilbert(double p, double r, double loss_good = 0.0, double loss_bad = 1.0) {
  LossModel model;
  model.kind = LossModel::Kind::kGilbertElliott;
  model.p = p;
  model.r = r;
  model.loss_good = loss_good;
  model.loss_bad = loss_bad;
  return model;
}

TEST(LossProcess, DefaultIsInertAndConsumesNoDraws) {
  LossProcess process;
  EXPECT_TRUE(process.inert());
  sim::Rng rng(7);
  sim::Rng untouched(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(process.ShouldDrop(rng));
  // The legacy byte-identity contract: an inert process leaves the RNG
  // stream exactly where it found it.
  EXPECT_EQ(rng.NextDouble(), untouched.NextDouble());
}

TEST(LossProcess, BernoulliExtremesAreDeterministic) {
  LossProcess never(Bernoulli(0.0));
  LossProcess always(Bernoulli(1.0));
  sim::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.ShouldDrop(rng));
    EXPECT_TRUE(always.ShouldDrop(rng));
  }
}

TEST(LossProcess, BernoulliRateMatchesEmpiricalFrequency) {
  LossProcess process(Bernoulli(0.3));
  sim::Rng rng(42);
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) drops += process.ShouldDrop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.02);
}

TEST(LossProcess, SameSeedSameDecisions) {
  LossProcess a(Gilbert(0.1, 0.3));
  LossProcess b(Gilbert(0.1, 0.3));
  sim::Rng rng_a(123);
  sim::Rng rng_b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.ShouldDrop(rng_a), b.ShouldDrop(rng_b)) << i;
    EXPECT_EQ(a.in_bad_state(), b.in_bad_state()) << i;
  }
}

TEST(LossProcess, GilbertStartsGoodAndClassicChannelDropsIffBad) {
  // Classic Gilbert: loss_good = 0, loss_bad = 1 — the drop decision *is*
  // the state, so drops must exactly track in_bad_state().
  LossProcess process(Gilbert(0.2, 0.4));
  EXPECT_FALSE(process.in_bad_state());
  sim::Rng rng(99);
  int transitions = 0;
  bool prev = false;
  for (int i = 0; i < 2000; ++i) {
    const bool was_bad = process.in_bad_state();
    EXPECT_EQ(process.ShouldDrop(rng), was_bad) << i;
    if (process.in_bad_state() != prev) ++transitions;
    prev = process.in_bad_state();
  }
  EXPECT_GT(transitions, 0);
}

TEST(LossProcess, GilbertProducesBursts) {
  // p = 0.05, r = 0.25: mean burst length 1/r = 4. Measure the mean run of
  // consecutive drops; independent losses at the same long-run rate would
  // give runs barely above 1.
  LossProcess process(Gilbert(0.05, 0.25));
  sim::Rng rng(7);
  std::vector<int> bursts;
  int run = 0;
  for (int i = 0; i < 50000; ++i) {
    if (process.ShouldDrop(rng)) {
      ++run;
    } else if (run > 0) {
      bursts.push_back(run);
      run = 0;
    }
  }
  ASSERT_FALSE(bursts.empty());
  double mean = 0;
  for (int b : bursts) mean += b;
  mean /= static_cast<double>(bursts.size());
  EXPECT_NEAR(mean, 4.0, 0.5);
}

TEST(LossProcess, GilbertStickyBadStateNeverRecovers) {
  // r = 0 pins the chain in the bad state once entered; p = 1 enters it on
  // the first datagram.
  LossProcess process(Gilbert(1.0, 0.0));
  sim::Rng rng(7);
  EXPECT_FALSE(process.ShouldDrop(rng));  // still good for its own fate
  EXPECT_TRUE(process.in_bad_state());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(process.ShouldDrop(rng));
}

TEST(LossProcess, GilbertLossyGoodState) {
  // A lossy good state (loss_good = 1) drops even before any transition.
  LossProcess process(Gilbert(0.0, 0.0, /*loss_good=*/1.0, /*loss_bad=*/1.0));
  sim::Rng rng(7);
  EXPECT_TRUE(process.ShouldDrop(rng));
  EXPECT_FALSE(process.in_bad_state());
}

}  // namespace
}  // namespace quicer::netem
