#include "qlog/qlog.h"

#include <gtest/gtest.h>

namespace quicer::qlog {
namespace {

MetricsUpdate Update(sim::Time t, sim::Duration smoothed, sim::Duration var) {
  MetricsUpdate update;
  update.time = t;
  update.smoothed_rtt = smoothed;
  update.rtt_var = var;
  update.latest_rtt = smoothed;
  return update;
}

TEST(Trace, RecordsMetrics) {
  Trace trace;
  trace.RecordMetrics(Update(1, sim::Millis(10), sim::Millis(5)));
  ASSERT_EQ(trace.metrics().size(), 1u);
  EXPECT_EQ(trace.metrics()[0].smoothed_rtt, sim::Millis(10));
  ASSERT_TRUE(trace.FirstMetrics().has_value());
}

TEST(Trace, DeduplicatesConsecutiveIdenticalUpdates) {
  // Mirrors the paper's post-processing (Appendix E).
  Trace trace;
  trace.RecordMetrics(Update(1, sim::Millis(10), sim::Millis(5)));
  trace.RecordMetrics(Update(2, sim::Millis(10), sim::Millis(5)));
  trace.RecordMetrics(Update(3, sim::Millis(12), sim::Millis(5)));
  EXPECT_EQ(trace.metrics().size(), 2u);
}

TEST(Trace, ExposureSuppressesShareOfUpdates) {
  TraceConfig config;
  config.metrics_exposure = 0.3;
  Trace trace(config, sim::Rng(5));
  for (int i = 0; i < 10000; ++i) {
    trace.RecordMetrics(Update(i, sim::Millis(i + 1), sim::Millis(1)));
  }
  const double exposed = static_cast<double>(trace.metrics().size()) / 10000.0;
  EXPECT_NEAR(exposed, 0.3, 0.03);
  EXPECT_GT(trace.suppressed_metrics_updates(), 0u);
}

TEST(Trace, RttVarOmittedWhenNotLogged) {
  // neqo/mvfst/picoquic do not log the RTT variance (Appendix E).
  TraceConfig config;
  config.logs_rttvar = false;
  Trace trace(config, sim::Rng(1));
  trace.RecordMetrics(Update(1, sim::Millis(10), sim::Millis(5)));
  ASSERT_EQ(trace.metrics().size(), 1u);
  EXPECT_EQ(trace.metrics()[0].rtt_var, 0);
  EXPECT_FALSE(trace.metrics()[0].rtt_var_logged);
}

TEST(Trace, PacketCaptureCanBeDisabled) {
  TraceConfig config;
  config.capture_packets = false;
  Trace trace(config, sim::Rng(1));
  trace.RecordPacket(PacketEvent{1, true, quic::PacketNumberSpace::kInitial, 0, 1200, true});
  EXPECT_TRUE(trace.packets().empty());
}

TEST(Trace, NotesAndNewAckCounter) {
  Trace trace;
  trace.RecordNote(5, "recovery", "PTO expired");
  ASSERT_EQ(trace.notes().size(), 1u);
  EXPECT_EQ(trace.notes()[0].category, "recovery");
  EXPECT_EQ(trace.packets_with_new_acks(), 0u);
  trace.CountNewAckPacket();
  trace.CountNewAckPacket();
  EXPECT_EQ(trace.packets_with_new_acks(), 2u);
}

TEST(Trace, FirstMetricsEmptyInitially) {
  Trace trace;
  EXPECT_FALSE(trace.FirstMetrics().has_value());
}

}  // namespace
}  // namespace quicer::qlog
