// Golden-file coverage for the qlog exporter: a trace exercising every
// event class — packets, metrics, all four StructEvent kinds (loss-timer
// set/cancelled/expired, packet_lost, datagram_dropped,
// connection_state_updated) and a note — must serialise to byte-exact
// JSON-SEQ output. The golden bytes are embedded here rather than read from
// a data file, so the test needs no install-path plumbing and a diff shows
// up directly in the assertion failure.
//
// Also pins the sweep-level qlog export (--qlog-dir): file naming,
// per-vantage content, and byte-identical output across repeated runs.
#include "qlog/qlog_json.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/sweep.h"

namespace quicer::qlog {
namespace {

namespace fs = std::filesystem;

std::string Scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("qlog_golden_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One of everything: a packet, a metrics update, every StructEvent kind
/// (with the loss timer in all three of its event_type forms) and a note.
Trace MakeFullTrace() {
  TraceConfig config;
  config.capture_events = true;
  Trace trace(config, sim::Rng(1));

  trace.RecordPacket(PacketEvent{sim::Millis(1), true, quic::PacketNumberSpace::kInitial,
                                 0, 1200, true});

  MetricsUpdate update;
  update.time = sim::Millis(10);
  update.smoothed_rtt = sim::Millis(9);
  update.rtt_var = sim::Millis(4.5);
  update.latest_rtt = sim::Millis(9);
  update.min_rtt = sim::Millis(9);
  trace.RecordMetrics(update);

  StructEvent timer_set;
  timer_set.kind = StructEvent::Kind::kLossTimerUpdated;
  timer_set.detail = 0;  // set
  timer_set.timer_type = 1;  // pto
  timer_set.time = sim::Millis(12);
  timer_set.space = quic::PacketNumberSpace::kHandshake;
  timer_set.deadline = sim::Millis(37);
  trace.RecordEvent(timer_set);

  StructEvent lost;
  lost.kind = StructEvent::Kind::kPacketLost;
  lost.detail = 1;  // time_threshold
  lost.time = sim::Millis(14);
  lost.space = quic::PacketNumberSpace::kInitial;
  lost.packet_number = 3;
  trace.RecordEvent(lost);

  StructEvent dropped;
  dropped.kind = StructEvent::Kind::kDatagramDropped;
  dropped.detail = 2;  // queue overflow
  dropped.time = sim::Millis(15);
  dropped.size = 1200;
  trace.RecordEvent(dropped);

  StructEvent state;
  state.kind = StructEvent::Kind::kConnectionStateUpdated;
  state.detail = 1;  // handshake_confirmed
  state.time = sim::Millis(16);
  trace.RecordEvent(state);

  StructEvent timer_cancelled;
  timer_cancelled.kind = StructEvent::Kind::kLossTimerUpdated;
  timer_cancelled.detail = 1;  // cancelled
  timer_cancelled.timer_type = 0;  // ack
  timer_cancelled.time = sim::Millis(17);
  trace.RecordEvent(timer_cancelled);

  StructEvent timer_expired;
  timer_expired.kind = StructEvent::Kind::kLossTimerUpdated;
  timer_expired.detail = 2;  // expired
  timer_expired.timer_type = 1;  // pto
  timer_expired.time = sim::Millis(18);
  trace.RecordEvent(timer_expired);

  trace.RecordNote(sim::Millis(20), "recovery", "PTO \"expired\"");
  return trace;
}

// clang-format off
const char kGolden[] =
    "{\"qlog_version\":\"0.3\",\"title\":\"reacked-quicer trace\","
        "\"trace\":{\"vantage_point\":{\"name\":\"server\"},\"event_count\":9}}\n"
    "{\"time\":1.000,\"name\":\"transport:packet_sent\",\"data\":{"
        "\"header\":{\"packet_type\":\"initial\",\"packet_number\":0},"
        "\"raw\":{\"length\":1200},\"is_ack_eliciting\":true}}\n"
    "{\"time\":10.000,\"name\":\"recovery:metrics_updated\",\"data\":{"
        "\"smoothed_rtt\":9.000,\"rtt_variance\":4.500,\"latest_rtt\":9.000,"
        "\"min_rtt\":9.000,\"pto_count\":0}}\n"
    "{\"time\":12.000,\"name\":\"recovery:loss_timer_updated\",\"data\":{"
        "\"event_type\":\"set\",\"timer_type\":\"pto\","
        "\"packet_number_space\":\"handshake\",\"delta\":25.000}}\n"
    "{\"time\":14.000,\"name\":\"recovery:packet_lost\",\"data\":{"
        "\"header\":{\"packet_type\":\"initial\",\"packet_number\":3},"
        "\"trigger\":\"time_threshold\"}}\n"
    "{\"time\":15.000,\"name\":\"transport:datagram_dropped\",\"data\":{"
        "\"raw\":{\"length\":1200},\"trigger\":\"queue_overflow\"}}\n"
    "{\"time\":16.000,\"name\":\"connectivity:connection_state_updated\","
        "\"data\":{\"new\":\"handshake_confirmed\"}}\n"
    "{\"time\":17.000,\"name\":\"recovery:loss_timer_updated\",\"data\":{"
        "\"event_type\":\"cancelled\",\"timer_type\":\"ack\"}}\n"
    "{\"time\":18.000,\"name\":\"recovery:loss_timer_updated\",\"data\":{"
        "\"event_type\":\"expired\",\"timer_type\":\"pto\"}}\n"
    "{\"time\":20.000,\"name\":\"internal:note\",\"data\":{"
        "\"category\":\"recovery\",\"message\":\"PTO \\\"expired\\\"\"}}\n";
// clang-format on

TEST(QlogGolden, FullEventCoverageSerialisesByteExact) {
  JsonOptions options;
  options.vantage = "server";
  EXPECT_EQ(ToJsonSeq(MakeFullTrace(), options), kGolden);
}

TEST(QlogGolden, StructuredEventsRespectCaptureFlagAndFilter) {
  // Default config: capture_events off, RecordEvent is a no-op.
  Trace off;
  StructEvent lost;
  lost.kind = StructEvent::Kind::kPacketLost;
  lost.time = sim::Millis(3);
  off.RecordEvent(lost);
  EXPECT_TRUE(off.events().empty());
  EXPECT_EQ(ToJsonSeq(off).find("packet_lost"), std::string::npos);

  // Captured events can still be filtered out at serialisation time.
  JsonOptions options;
  options.include_events = false;
  const std::string filtered = ToJsonSeq(MakeFullTrace(), options);
  EXPECT_EQ(filtered.find("loss_timer_updated"), std::string::npos);
  EXPECT_EQ(filtered.find("datagram_dropped"), std::string::npos);
  EXPECT_NE(filtered.find("metrics_updated"), std::string::npos);
}

/// A tiny default-runner sweep with qlog export: 2 points x 2 repetitions.
core::SweepSpec QlogSweep(const std::string& qlog_dir) {
  core::SweepSpec spec;
  spec.name = "qsweep";
  spec.base.response_body_bytes = 2048;
  spec.axes.rtts = {sim::Millis(9), sim::Millis(20)};
  spec.repetitions = 2;
  spec.qlog_dir = qlog_dir;
  return spec;
}

TEST(QlogGolden, SweepExportWritesDeterministicPerRunFiles) {
  const std::string first = Scratch("first");
  const std::string second = Scratch("second");
  const core::SweepResult a = core::RunSweep(QlogSweep(first));
  const core::SweepResult b = core::RunSweep(QlogSweep(second));
  EXPECT_EQ(a.executed_runs, 4u);
  EXPECT_EQ(b.executed_runs, 4u);

  // One client + one server file per (point, repetition), named by stable
  // point id and absolute repetition index.
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(first)) {
    files[entry.path().filename().string()] = SlurpFile(entry.path().string());
  }
  ASSERT_EQ(files.size(), 8u);
  for (int point = 0; point < 2; ++point) {
    for (int rep = 0; rep < 2; ++rep) {
      const std::string stem =
          "qsweep_p" + std::to_string(point) + "_r" + std::to_string(rep) + "_";
      ASSERT_TRUE(files.count(stem + "client.qlog")) << stem;
      ASSERT_TRUE(files.count(stem + "server.qlog")) << stem;
    }
  }

  // Each file is a full trace from its vantage, with structured events on.
  const std::string& client = files["qsweep_p0_r0_client.qlog"];
  EXPECT_NE(client.find("\"vantage_point\":{\"name\":\"client\"}"), std::string::npos);
  EXPECT_NE(client.find("transport:packet_sent"), std::string::npos);
  EXPECT_NE(client.find("connectivity:connection_state_updated"), std::string::npos);
  const std::string& server = files["qsweep_p0_r0_server.qlog"];
  EXPECT_NE(server.find("\"vantage_point\":{\"name\":\"server\"}"), std::string::npos);

  // Seeds derive from (point, repetition) alone, so a repeated run produces
  // byte-identical files regardless of worker scheduling.
  for (const auto& [name, content] : files) {
    EXPECT_EQ(content, SlurpFile(second + "/" + name)) << name;
  }
}

}  // namespace
}  // namespace quicer::qlog
