#include "qlog/qlog_json.h"

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace quicer::qlog {
namespace {

Trace MakeTrace() {
  Trace trace;
  trace.RecordPacket(PacketEvent{sim::Millis(1), true, quic::PacketNumberSpace::kInitial, 0,
                                 1200, true});
  trace.RecordPacket(PacketEvent{sim::Millis(10), false, quic::PacketNumberSpace::kInitial, 0,
                                 50, false});
  MetricsUpdate update;
  update.time = sim::Millis(10);
  update.smoothed_rtt = sim::Millis(9);
  update.rtt_var = sim::Millis(4.5);
  update.latest_rtt = sim::Millis(9);
  update.min_rtt = sim::Millis(9);
  trace.RecordMetrics(update);
  trace.RecordNote(sim::Millis(12), "recovery", "PTO \"expired\"");
  return trace;
}

TEST(QlogJson, HeaderFirstLine) {
  const std::string out = ToJsonSeq(MakeTrace());
  const std::string first = out.substr(0, out.find('\n'));
  EXPECT_NE(first.find("\"qlog_version\":\"0.3\""), std::string::npos);
  EXPECT_NE(first.find("\"event_count\":4"), std::string::npos);
}

TEST(QlogJson, OneLinePerEvent) {
  const std::string out = ToJsonSeq(MakeTrace());
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);  // header + 4 events
}

TEST(QlogJson, EventsSortedByTime) {
  const std::string out = ToJsonSeq(MakeTrace());
  const std::size_t sent = out.find("packet_sent");
  const std::size_t received = out.find("packet_received");
  const std::size_t metrics = out.find("metrics_updated");
  const std::size_t note = out.find("internal:note");
  ASSERT_NE(sent, std::string::npos);
  ASSERT_NE(received, std::string::npos);
  ASSERT_NE(metrics, std::string::npos);
  ASSERT_NE(note, std::string::npos);
  EXPECT_LT(sent, received);
  EXPECT_LT(received, metrics);  // same time, insertion order preserved
  EXPECT_LT(metrics, note);
}

TEST(QlogJson, QuotesEscapedInNotes) {
  const std::string out = ToJsonSeq(MakeTrace());
  EXPECT_NE(out.find("PTO \\\"expired\\\""), std::string::npos);
}

TEST(QlogJson, FiltersRespectOptions) {
  JsonOptions options;
  options.include_packets = false;
  options.include_notes = false;
  const std::string out = ToJsonSeq(MakeTrace(), options);
  EXPECT_EQ(out.find("packet_sent"), std::string::npos);
  EXPECT_EQ(out.find("internal:note"), std::string::npos);
  EXPECT_NE(out.find("metrics_updated"), std::string::npos);
}

TEST(QlogJson, OmitsVarianceWhenNotLogged) {
  TraceConfig config;
  config.logs_rttvar = false;
  Trace trace(config, sim::Rng(1));
  MetricsUpdate update;
  update.time = sim::Millis(5);
  update.smoothed_rtt = sim::Millis(9);
  update.rtt_var = sim::Millis(4);
  update.latest_rtt = sim::Millis(9);
  trace.RecordMetrics(update);
  const std::string out = ToJsonSeq(trace);
  EXPECT_EQ(out.find("rtt_variance"), std::string::npos);
  EXPECT_NE(out.find("smoothed_rtt"), std::string::npos);
}

TEST(QlogJson, EndToEndTraceSerialises) {
  core::ExperimentConfig config;
  config.rtt = sim::Millis(9);
  config.response_body_bytes = 4096;
  std::string json;
  core::RunExperiment(config, [&](const quic::ClientConnection& client,
                                  const quic::ServerConnection&) {
    json = ToJsonSeq(client.trace());
  });
  EXPECT_NE(json.find("packet_sent"), std::string::npos);
  EXPECT_NE(json.find("metrics_updated"), std::string::npos);
  // Every line after the header parses as a JSON object (cheap check:
  // starts with '{' and ends with '}').
  std::size_t start = 0;
  while (start < json.size()) {
    const std::size_t end = json.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(json[start], '{');
    EXPECT_EQ(json[end - 1], '}');
    start = end + 1;
  }
}

}  // namespace
}  // namespace quicer::qlog
