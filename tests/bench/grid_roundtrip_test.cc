// Scenario-codec round trip over the real grids of every registered bench:
// export (serialize the enumerated specs) → parse → apply onto the live
// specs → re-export must reproduce the bytes, and the content-hash of the
// applied spec must equal the original's. This is the compile-time grids'
// contract with the --grid workflow: a file produced by export-grid always
// runs exactly the compiled-in grid.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/scenario.h"
#include "registry.h"

namespace quicer {
namespace {

using bench::CapturedSpec;

/// Enumerates every sweep of every registered bench (no experiments run)
/// through the same capture helper the shipping export-grid path uses.
std::vector<CapturedSpec> CaptureAll() {
  return bench::CaptureSpecs(bench::Registry::Instance().Benches(), /*scale=*/1);
}

TEST(GridRoundTrip, EveryRegisteredBenchIsCaptured) {
  const std::vector<CapturedSpec> specs = CaptureAll();
  std::set<std::string> benches;
  for (const CapturedSpec& captured : specs) benches.insert(captured.bench);
  EXPECT_EQ(benches.size(), bench::Registry::Instance().Benches().size());
  EXPECT_GE(benches.size(), 27u);
}

TEST(GridRoundTrip, ExportParseApplyReexportIsByteIdentical) {
  std::vector<CapturedSpec> specs = CaptureAll();
  ASSERT_FALSE(specs.empty());

  std::vector<std::pair<std::string, const core::SweepSpec*>> entries;
  for (const CapturedSpec& captured : specs) entries.emplace_back(captured.bench, &captured.spec);
  const std::string exported = core::ScenarioFileJson(entries);

  std::string error;
  const std::optional<std::vector<core::Scenario>> scenarios =
      core::ParseScenarioFile(exported, &error);
  ASSERT_TRUE(scenarios.has_value()) << error;
  ASSERT_EQ(scenarios->size(), specs.size());

  std::vector<core::SweepSpec> applied;
  applied.reserve(specs.size());
  for (std::size_t i = 0; i < scenarios->size(); ++i) {
    const core::Scenario& scenario = (*scenarios)[i];
    ASSERT_EQ(scenario.bench, specs[i].bench);
    ASSERT_EQ(scenario.sweep, specs[i].spec.name);
    core::SweepSpec copy = specs[i].spec;
    ASSERT_TRUE(core::ApplyScenario(scenario, copy, &error))
        << specs[i].bench << "/" << specs[i].spec.name << ": " << error;
    EXPECT_EQ(core::ScenarioHash(copy), core::ScenarioHash(specs[i].spec))
        << specs[i].bench << "/" << specs[i].spec.name << ": content-hash drifted";
    applied.push_back(std::move(copy));
  }

  std::vector<std::pair<std::string, const core::SweepSpec*>> reentries;
  for (std::size_t i = 0; i < applied.size(); ++i) {
    reentries.emplace_back(specs[i].bench, &applied[i]);
  }
  const std::string reexported = core::ScenarioFileJson(reentries);
  ASSERT_EQ(exported.size(), reexported.size());
  EXPECT_EQ(exported, reexported);
}

TEST(GridRoundTrip, AppliedGridEnumeratesIdenticalPoints) {
  std::vector<CapturedSpec> specs = CaptureAll();
  for (const CapturedSpec& captured : specs) {
    std::vector<std::pair<std::string, const core::SweepSpec*>> entries = {
        {captured.bench, &captured.spec}};
    std::string error;
    const std::optional<std::vector<core::Scenario>> scenarios =
        core::ParseScenarioFile(core::ScenarioFileJson(entries), &error);
    ASSERT_TRUE(scenarios.has_value()) << error;
    core::SweepSpec copy = captured.spec;
    ASSERT_TRUE(core::ApplyScenario(scenarios->front(), copy, &error)) << error;
    const std::vector<core::SweepPoint> original = core::Enumerate(captured.spec);
    const std::vector<core::SweepPoint> roundtripped = core::Enumerate(copy);
    ASSERT_EQ(original.size(), roundtripped.size())
        << captured.bench << "/" << captured.spec.name;
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].Key(), roundtripped[i].Key())
          << captured.bench << "/" << captured.spec.name << " point " << i;
    }
  }
}

TEST(GridRoundTrip, MutatedAxisChangesTheContentHash) {
  std::vector<CapturedSpec> specs = CaptureAll();
  core::SweepSpec* fig06 = nullptr;
  for (CapturedSpec& captured : specs) {
    if (captured.spec.name == "fig06") fig06 = &captured.spec;
  }
  ASSERT_NE(fig06, nullptr);
  core::SweepSpec mutated = *fig06;
  mutated.axes.rtts.push_back(sim::Millis(50));
  EXPECT_NE(core::ScenarioHash(mutated), core::ScenarioHash(*fig06));
}

}  // namespace
}  // namespace quicer
